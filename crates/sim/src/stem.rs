//! Two-level stem-region fault simulation on configurable-width words.
//!
//! The per-fault PPSFP engine pays one event-driven cone propagation *per
//! fault* per 64-pattern block. This module collapses that to one
//! propagation *per fanout-free region (FFR)*, exploiting two classical
//! facts:
//!
//! 1. **Inside an FFR, critical path tracing is exact.** Every internal
//!    node has a unique path to the region's stem (its root), so the word
//!    of patterns under which a value change at a node propagates to the
//!    stem — its *sensitization word* — is computed by one reverse sweep:
//!    `sens(u) = sens(reader) & pin_sens(reader, pin_of(u))`, with
//!    `sens(stem) = ~0`. A fault's *stem difference word* is then its
//!    local activation word ANDed with the sensitization along its path;
//!    no event queue is involved.
//! 2. **Observability from a stem is fault-independent.** Whether a
//!    flipped stem value reaches a primary output depends only on the
//!    good-machine values outside the region. One propagation of the
//!    *complemented stem* through the stem's fanout cone yields the
//!    stem's observability word `obs(stem)`; every fault in the region is
//!    then detected exactly on `stem_diff(f) & obs(stem)`.
//!
//! Three further multipliers sit on top of the two-level scheme:
//!
//! * **Wide words.** Every per-superblock kernel is generic over
//!   [`SimWord<N>`] (`N` ∈ {1, 2, 4, 8} lanes, selected at runtime by
//!   [`SimWidth`] — see the [`word`](crate::word) module for the
//!   dispatch strategy). A superblock is `N` consecutive 64-pattern
//!   blocks, so one sensitization sweep and one observability walk
//!   serve `N * 64` patterns.
//! * **Dominator-based stem merging.** When a node `d` lies on every
//!   path from stem `s` to the outputs (its immediate post-dominator,
//!   precomputed on the [`CompiledCircuit`]), the engine propagates the
//!   flipped stem only as far as `d` and composes
//!   `obs(s) = diff_at_d(s) & obs(d)` — stem chains share the memoized
//!   `obs(d)` suffix instead of each re-walking the whole cone.
//! * **Two-dimensional parallelism.** The block-parallel split carves
//!   the superblock range across threads (best when there are plenty of
//!   blocks); the region-parallel split carves the *stem-region groups*
//!   across threads, each writing a disjoint set of matrix rows merged
//!   without locks (best for few-block, small-`U` workloads — the
//!   paper's actual experiment shape).
//!   [`no_drop_matrix_parallel`](StemRegionEngine::no_drop_matrix_parallel)
//!   picks automatically; both variants are also exposed directly.
//!
//! The combination is bit-identical to per-fault simulation at every
//! width and thread count (asserted by differential tests against both
//! the per-fault engine and a scalar brute-force oracle) while the
//! expensive cone walk is paid once per stem with a non-zero difference
//! word — an asymptotic win since FFRs average several faults each.
//!
//! Everything runs in [`LevelizedCsr`] position space: the forward good
//! sweep, the reverse sensitization sweep, and the observability
//! propagation (which uses the position itself as its event priority)
//! all touch contiguous arrays in evaluation order.

use std::sync::atomic::{AtomicUsize, Ordering};

use adi_netlist::dominator::POST_DOM_SINK;
use adi_netlist::fault::{FaultId, FaultList, FaultSite};
use adi_obs::SpanSite;
use adi_netlist::{CompiledCircuit, GateKind, LevelizedCsr};

/// Oversplit factor for the work-stealing region split: each thread's
/// share of the stem-region groups is cut into this many weight-balanced
/// chunks, so a thread finishing a cheap chunk pulls another from the
/// shared cursor instead of idling while a skewed chunk finishes.
const CHUNKS_PER_THREAD: usize = 4;

use crate::faultsim::{DropOutcome, NDetectOutcome};
use crate::logic::{self, eval_with_pos_w};
use crate::word::{SimWord, SimWidth};
use crate::{DetectionMatrix, PatternSet};

/// A fault site resolved into CSR position space.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PosSite {
    /// Stem fault at the node occupying this position.
    Stem { pos: u32 },
    /// Branch fault on pin `pin` of the gate occupying `gate_pos`.
    Branch { gate_pos: u32, pin: u16 },
}

/// Per-fault precomputed injection info.
#[derive(Clone, Copy, Debug)]
struct FaultInfo {
    site: PosSite,
    /// The stuck value as a word (`!0` for s-a-1, `0` for s-a-0),
    /// splatted across lanes at injection.
    stuck_word: u64,
}

/// The two-level stem-region fault-simulation engine, precomputed for
/// one compiled circuit and fault list.
///
/// [`FaultSimulator`](crate::FaultSimulator) builds one of these per
/// call when driving [`EngineKind::StemRegion`](crate::EngineKind); hold
/// an instance directly to amortize the per-fault-list setup over many
/// pattern sets. The per-circuit artifacts (levelized view, FFR
/// decomposition, post-dominators) come from the [`CompiledCircuit`]
/// and are shared, not rebuilt.
///
/// The engine carries a [`SimWidth`] (default: the process-wide
/// environment default) selecting the lane count of every simulation;
/// all widths produce bit-identical results.
///
/// # Examples
///
/// ```
/// use adi_netlist::{bench_format, CompiledCircuit};
/// use adi_sim::{stem::StemRegionEngine, PatternSet, SimWidth};
///
/// # fn main() -> Result<(), adi_netlist::NetlistError> {
/// let n = bench_format::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and2")?;
/// let circuit = CompiledCircuit::compile(n);
/// let faults = circuit.collapsed_faults();
/// let engine = StemRegionEngine::for_circuit(&circuit, faults).with_width(SimWidth::W4);
/// let matrix = engine.no_drop_matrix(&PatternSet::exhaustive(2));
/// assert_eq!(matrix.num_detected_faults(), faults.len());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct StemRegionEngine<'a> {
    circuit: CompiledCircuit,
    faults: &'a FaultList,
    /// Per-fault injection info, indexed by fault id.
    fault_info: Vec<FaultInfo>,
    /// `true` at positions whose node roots its own FFR.
    is_root: Vec<bool>,
    /// For non-root positions: the unique reading gate's position and
    /// the pin it reads through. Roots carry a sentinel.
    reader: Vec<(u32, u16)>,
    /// `true` at positions whose sensitization word is actually consumed:
    /// fault sites and the nodes on their unique paths to their roots.
    /// The per-block sensitization sweep skips everything else.
    sens_needed: Vec<bool>,
    /// Root position of each fault group, ascending.
    group_roots: Vec<u32>,
    /// CSR index over `group_faults`, one entry per group plus one.
    group_index: Vec<u32>,
    /// Fault ids grouped by FFR root, ascending fault id within a group.
    group_faults: Vec<u32>,
    /// Per-group work estimate: fault count plus the root's (capped)
    /// fanout-cone size — the two terms the group's detection cost is
    /// proportional to (stem-difference words per fault, one
    /// observability cone walk per stem). Drives the weight-balanced
    /// chunking behind the work-stealing region split.
    group_weights: Vec<u64>,
    /// Simulation word width every drive mode runs at.
    width: SimWidth,
    /// Dominator-based stem merging (on by default; the off switch
    /// exists for differential testing of the merged observability).
    merge_stems: bool,
}

/// Reusable per-superblock buffers for the stem-region engine, generic
/// over the lane count.
#[derive(Clone, Debug)]
pub(crate) struct StemScratch<const N: usize> {
    /// Good-machine words by position.
    pub(crate) good: Vec<SimWord<N>>,
    /// Sensitization-to-root words by position.
    sens: Vec<SimWord<N>>,
    /// Packed input words for the current superblock.
    input_words: Vec<SimWord<N>>,
    /// Observability propagation state (shared across roots via stamps).
    obs: ObsScratch<N>,
}

#[derive(Clone, Debug)]
struct ObsScratch<const N: usize> {
    faulty: Vec<SimWord<N>>,
    stamp: Vec<u32>,
    queued: Vec<u32>,
    version: u32,
    /// Level-bucket frontier: positions are level-sorted, so draining
    /// buckets in level order is a correct (and heap-free) event queue.
    frontier: Vec<Vec<u32>>,
    /// Memoized `obs(position)` values for the current superblock
    /// (roots and their dominator-chain ancestors).
    memo: Vec<SimWord<N>>,
    memo_stamp: Vec<u32>,
    memo_version: u32,
    /// Reusable dominator-chain buffer for the iterative memo fill.
    chain: Vec<u32>,
}

impl<const N: usize> StemScratch<N> {
    pub(crate) fn new(view: &LevelizedCsr) -> Self {
        let n = view.num_nodes();
        StemScratch {
            good: vec![SimWord::ZERO; n],
            sens: vec![SimWord::ZERO; n],
            input_words: vec![SimWord::ZERO; view.inputs().len()],
            obs: ObsScratch {
                faulty: vec![SimWord::ZERO; n],
                stamp: vec![0; n],
                queued: vec![0; n],
                version: 0,
                frontier: vec![Vec::new(); view.num_levels()],
                memo: vec![SimWord::ZERO; n],
                memo_stamp: vec![0; n],
                memo_version: 0,
                chain: Vec::new(),
            },
        }
    }
}

impl<const N: usize> ObsScratch<N> {
    /// Starts a fresh memo generation (all memoized observabilities of
    /// the previous superblock become stale).
    fn advance_memo(&mut self) {
        self.memo_version = self.memo_version.wrapping_add(1);
        if self.memo_version == 0 {
            self.memo_stamp.fill(0);
            self.memo_version = 1;
        }
    }
}

impl<'a> StemRegionEngine<'a> {
    /// Builds the engine for `circuit`: per-fault injection info and the
    /// fault-per-region grouping. The levelized view, the FFR
    /// decomposition, and the post-dominators are shared from the
    /// compilation, not rebuilt.
    ///
    /// # Panics
    ///
    /// Panics if any fault references a node outside the circuit.
    pub fn for_circuit(circuit: &CompiledCircuit, faults: &'a FaultList) -> Self {
        let netlist = circuit.netlist();
        let view = circuit.view();
        let ffr = circuit.ffr();
        let n = netlist.num_nodes();
        // Materialize the shared post-dominators now so the hot loops
        // (possibly on several threads) never race the lazy init.
        let _ = circuit.post_dominators();

        let mut is_root = vec![false; n];
        for id in netlist.node_ids() {
            if ffr.root_of(id) == id {
                is_root[view.position(id)] = true;
            }
        }

        // Unique reader (gate position, pin) per non-root position. A
        // node reaching the same gate through two pins has two fanout
        // entries and is therefore a root, so the pin is unambiguous.
        let mut reader = vec![(u32::MAX, u16::MAX); n];
        for p in 0..n {
            if is_root[p] {
                continue;
            }
            let fanouts = view.fanouts_at(p);
            debug_assert_eq!(fanouts.len(), 1, "non-root with fanout != 1");
            let g = fanouts[0];
            let pin = view
                .fanins_at(g as usize)
                .iter()
                .position(|&f| f == p as u32)
                .expect("reader lists driver among fanins");
            reader[p] = (g, pin as u16);
        }

        let mut fault_info = Vec::with_capacity(faults.len());
        let mut root_pos_of = Vec::with_capacity(faults.len());
        for (_, fault) in faults.iter() {
            assert!(
                fault.effect_node().index() < n,
                "fault {fault} outside netlist"
            );
            let stuck_word = if fault.stuck_value() { !0u64 } else { 0u64 };
            let site = match fault.site() {
                FaultSite::Stem(node) => PosSite::Stem {
                    pos: view.position(node) as u32,
                },
                FaultSite::Branch { gate, pin } => PosSite::Branch {
                    gate_pos: view.position(gate) as u32,
                    pin: u16::from(pin),
                },
            };
            fault_info.push(FaultInfo { site, stuck_word });
            let root = ffr.root_of(fault.effect_node());
            root_pos_of.push(view.position(root) as u32);
        }

        // Sensitization is only read at fault sites and along their
        // unique paths to their roots; mark those positions so the
        // per-block reverse sweep can skip the rest of the circuit.
        let mut sens_needed = vec![false; n];
        for (_, fault) in faults.iter() {
            let mut p = view.position(fault.effect_node());
            loop {
                if sens_needed[p] {
                    break;
                }
                sens_needed[p] = true;
                if is_root[p] {
                    break;
                }
                p = reader[p].0 as usize;
            }
        }

        // Group faults by root position (the sort is stable, so fault
        // ids stay ascending within each group).
        let mut order: Vec<u32> = (0..faults.len() as u32).collect();
        order.sort_by_key(|&f| root_pos_of[f as usize]);
        let mut group_roots = Vec::new();
        let mut group_index = Vec::new();
        let mut group_faults = Vec::with_capacity(faults.len());
        for &f in &order {
            let root = root_pos_of[f as usize];
            if group_roots.last() != Some(&root) {
                group_roots.push(root);
                group_index.push(group_faults.len() as u32);
            }
            group_faults.push(f);
        }
        group_index.push(group_faults.len() as u32);

        // Fanout-cone size estimate per position (reverse-topological
        // accumulation; reconvergence double-counts, which is fine for a
        // load-balancing weight — saturate and cap so skewed circuits
        // cannot overflow the prefix sums).
        const CONE_CAP: u64 = 1 << 20;
        let mut cone = vec![1u64; n];
        for p in (0..n).rev() {
            let mut acc = 1u64;
            for &q in view.fanouts_at(p) {
                acc = acc.saturating_add(cone[q as usize]);
            }
            cone[p] = acc.min(CONE_CAP);
        }
        let group_weights: Vec<u64> = group_roots
            .iter()
            .zip(group_index.windows(2))
            .map(|(&root, w)| u64::from(w[1] - w[0]) + cone[root as usize])
            .collect();

        StemRegionEngine {
            circuit: circuit.clone(),
            faults,
            fault_info,
            is_root,
            reader,
            sens_needed,
            group_roots,
            group_index,
            group_faults,
            group_weights,
            width: SimWidth::default(),
            merge_stems: true,
        }
    }

    /// Returns the engine with its simulation word width set to `width`
    /// (builder style). All widths are bit-identical; wider words
    /// amortize the per-superblock sweeps and walks over more patterns.
    #[must_use]
    pub fn with_width(mut self, width: SimWidth) -> Self {
        self.width = width;
        self
    }

    /// The simulation word width every drive mode runs at.
    pub fn width(&self) -> SimWidth {
        self.width
    }

    /// Enables or disables dominator-based stem merging (builder
    /// style). Merging is on by default and bit-identical to the full
    /// cone walk; the switch exists so differential tests can pin
    /// merged observability against unmerged.
    #[must_use]
    pub fn with_stem_merging(mut self, merge: bool) -> Self {
        self.merge_stems = merge;
        self
    }

    /// The levelized view the engine runs on.
    pub fn view(&self) -> &LevelizedCsr {
        self.circuit.view()
    }

    /// Number of fanout-free regions containing at least one fault.
    pub fn num_fault_regions(&self) -> usize {
        self.group_roots.len()
    }

    /// Simulates every fault under every pattern **without dropping**,
    /// bit-identical to the per-fault engine's matrix at every width.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width does not match the circuit.
    pub fn no_drop_matrix(&self, patterns: &PatternSet) -> DetectionMatrix {
        match self.width {
            SimWidth::W1 => self.no_drop_matrix_w::<1>(patterns),
            SimWidth::W2 => self.no_drop_matrix_w::<2>(patterns),
            SimWidth::W4 => self.no_drop_matrix_w::<4>(patterns),
            SimWidth::W8 => self.no_drop_matrix_w::<8>(patterns),
        }
    }

    fn no_drop_matrix_w<const N: usize>(&self, patterns: &PatternSet) -> DetectionMatrix {
        static SPAN_NO_DROP: SpanSite = SpanSite::new("sim.no_drop");
        static SPAN_BLOCK: SpanSite = SpanSite::new("sim.block");
        let _span = SPAN_NO_DROP.enter();
        self.assert_width(patterns);
        let mut matrix = DetectionMatrix::new(self.faults.len(), patterns.len());
        let mut scratch = StemScratch::<N>::new(self.view());
        for sb in 0..patterns.num_superblocks(N) {
            let _block_span = SPAN_BLOCK.enter();
            self.sim_superblock(patterns, sb, &mut scratch);
            let mask = patterns.valid_mask_wide::<N>(sb);
            self.for_each_detection(mask, &mut scratch, None, |fault, word| {
                or_word_wide(&mut matrix, fault, sb, word);
            });
        }
        matrix
    }

    /// Like [`no_drop_matrix`](Self::no_drop_matrix) but parallel in
    /// two dimensions: when the pattern set has at least one superblock
    /// per thread the superblock range is split
    /// ([`no_drop_matrix_block_parallel`](Self::no_drop_matrix_block_parallel));
    /// otherwise — the few-block, small-`U` shape — the stem-region
    /// groups are split
    /// ([`no_drop_matrix_region_parallel`](Self::no_drop_matrix_region_parallel)).
    /// The result is identical to the serial version either way.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or the pattern width does not match.
    pub fn no_drop_matrix_parallel(
        &self,
        patterns: &PatternSet,
        threads: usize,
    ) -> DetectionMatrix {
        assert!(threads > 0, "at least one thread required");
        self.assert_width(patterns);
        if threads == 1 {
            return self.no_drop_matrix(patterns);
        }
        let n_superblocks = patterns.num_superblocks(self.width.lanes());
        if n_superblocks >= threads {
            self.no_drop_matrix_block_parallel(patterns, threads)
        } else {
            self.no_drop_matrix_region_parallel(patterns, threads)
        }
    }

    /// The block-parallel split: each thread simulates a contiguous
    /// superblock range into a fault-major stripe, scattered into the
    /// matrix afterwards. Identical to the serial result.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or the pattern width does not match.
    pub fn no_drop_matrix_block_parallel(
        &self,
        patterns: &PatternSet,
        threads: usize,
    ) -> DetectionMatrix {
        assert!(threads > 0, "at least one thread required");
        match self.width {
            SimWidth::W1 => self.block_parallel_w::<1>(patterns, threads),
            SimWidth::W2 => self.block_parallel_w::<2>(patterns, threads),
            SimWidth::W4 => self.block_parallel_w::<4>(patterns, threads),
            SimWidth::W8 => self.block_parallel_w::<8>(patterns, threads),
        }
    }

    fn block_parallel_w<const N: usize>(
        &self,
        patterns: &PatternSet,
        threads: usize,
    ) -> DetectionMatrix {
        self.assert_width(patterns);
        let n_superblocks = patterns.num_superblocks(N);
        let threads = threads.min(n_superblocks.max(1));
        if threads <= 1 {
            return self.no_drop_matrix_w::<N>(patterns);
        }
        let n_faults = self.faults.len();
        let chunk = n_superblocks.div_ceil(threads);
        // Each thread fills a fault-major stripe over its superblock
        // range; stripes are scattered into the matrix afterwards.
        let mut stripes: Vec<(usize, Vec<SimWord<N>>)> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads {
                let b0 = t * chunk;
                let b1 = ((t + 1) * chunk).min(n_superblocks);
                if b0 >= b1 {
                    break;
                }
                handles.push(scope.spawn(move || {
                    let len = b1 - b0;
                    let mut local = vec![SimWord::<N>::ZERO; n_faults * len];
                    let mut scratch = StemScratch::<N>::new(self.view());
                    for sb in b0..b1 {
                        self.sim_superblock(patterns, sb, &mut scratch);
                        let mask = patterns.valid_mask_wide::<N>(sb);
                        let off = sb - b0;
                        self.for_each_detection(mask, &mut scratch, None, |fault, word| {
                            local[fault as usize * len + off] |= word;
                        });
                    }
                    (b0, local)
                }));
            }
            for h in handles {
                stripes.push(h.join().expect("stem worker panicked"));
            }
        });
        let mut matrix = DetectionMatrix::new(n_faults, patterns.len());
        for (b0, local) in stripes {
            let len = local.len() / n_faults.max(1);
            for f in 0..n_faults {
                for off in 0..len {
                    let w = local[f * len + off];
                    if !w.is_zero() {
                        or_word_wide(&mut matrix, f as u32, b0 + off, w);
                    }
                }
            }
        }
        matrix
    }

    /// The region-parallel split: the good machine is computed once
    /// (superblock ranges split across threads), then each thread
    /// detects a contiguous range of stem-region groups — a disjoint
    /// set of matrix rows, so the stripes merge without locks. This is
    /// the split that scales when the pattern set has fewer superblocks
    /// than threads. Identical to the serial result.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or the pattern width does not match.
    pub fn no_drop_matrix_region_parallel(
        &self,
        patterns: &PatternSet,
        threads: usize,
    ) -> DetectionMatrix {
        assert!(threads > 0, "at least one thread required");
        match self.width {
            SimWidth::W1 => self.region_parallel_w::<1>(patterns, threads),
            SimWidth::W2 => self.region_parallel_w::<2>(patterns, threads),
            SimWidth::W4 => self.region_parallel_w::<4>(patterns, threads),
            SimWidth::W8 => self.region_parallel_w::<8>(patterns, threads),
        }
    }

    fn region_parallel_w<const N: usize>(
        &self,
        patterns: &PatternSet,
        threads: usize,
    ) -> DetectionMatrix {
        self.assert_width(patterns);
        let n_superblocks = patterns.num_superblocks(N);
        let n_groups = self.group_roots.len();
        let threads = threads.min(n_groups.max(1));
        if threads <= 1 || n_superblocks == 0 {
            return self.no_drop_matrix_w::<N>(patterns);
        }
        let n_pos = self.view().num_nodes();
        let n_faults = self.faults.len();

        // Phase 1: the shared good machine, superblock-major. The
        // superblock ranges are disjoint slices, so this phase is
        // embarrassingly parallel too.
        let mut good_all = vec![SimWord::<N>::ZERO; n_pos * n_superblocks];
        let sb_chunk = n_superblocks.div_ceil(threads);
        std::thread::scope(|scope| {
            for (ci, chunk) in good_all.chunks_mut(n_pos * sb_chunk).enumerate() {
                scope.spawn(move || {
                    let mut input_words = vec![SimWord::<N>::ZERO; self.view().inputs().len()];
                    for (off, out) in chunk.chunks_mut(n_pos).enumerate() {
                        let sb = ci * sb_chunk + off;
                        logic::load_input_words_w(patterns, sb, &mut input_words);
                        logic::simulate_superblock_csr(self.view(), &input_words, out);
                    }
                });
            }
        });

        // Phase 2: weight-balanced group chunks pulled from a shared
        // atomic cursor (work stealing — a thread that drew a cheap
        // chunk takes another instead of idling at the barrier). Every
        // fault lives in exactly one chunk, so the collected
        // `(fault, superblock, word)` hits target disjoint matrix rows
        // and the final scatter is order-independent.
        let chunks = self.chunk_group_ranges(threads * CHUNKS_PER_THREAD);
        let cursor = AtomicUsize::new(0);
        let good_ref: &[SimWord<N>] = &good_all;
        let mut hit_lists: Vec<Vec<(u32, u32, SimWord<N>)>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                let cursor = &cursor;
                let chunks = &chunks;
                handles.push(scope.spawn(move || {
                    let mut hits: Vec<(u32, u32, SimWord<N>)> = Vec::new();
                    let mut scratch = StemScratch::<N>::new(self.view());
                    let mut marking = Vec::new();
                    let mut ids: Vec<FaultId> = Vec::new();
                    loop {
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= chunks.len() {
                            break;
                        }
                        let (g0, g1) = chunks[c];
                        let f_lo = self.group_index[g0] as usize;
                        let f_hi = self.group_index[g1] as usize;
                        // Sensitization marking restricted to the
                        // chunk's faults: the reverse sweep skips every
                        // other region.
                        ids.clear();
                        ids.extend(
                            self.group_faults[f_lo..f_hi]
                                .iter()
                                .map(|&f| FaultId::new(f as usize)),
                        );
                        self.mark_sens_needed(&ids, &mut marking);
                        for sb in 0..n_superblocks {
                            let good = &good_ref[sb * n_pos..(sb + 1) * n_pos];
                            self.prepare_sens(good, &mut scratch.sens, &marking);
                            scratch.obs.advance_memo();
                            let mask = patterns.valid_mask_wide::<N>(sb);
                            let StemScratch { sens, obs, .. } = &mut scratch;
                            self.detect_groups(g0, g1, mask, good, sens, obs, None, &mut |f, det| {
                                hits.push((f, sb as u32, det));
                            });
                        }
                    }
                    hits
                }));
            }
            for h in handles {
                hit_lists.push(h.join().expect("stem region worker panicked"));
            }
        });
        let mut matrix = DetectionMatrix::new(n_faults, patterns.len());
        for hits in hit_lists {
            for (fault, sb, w) in hits {
                or_word_wide(&mut matrix, fault, sb as usize, w);
            }
        }
        matrix
    }

    /// Splits the group range into at most `chunks` contiguous,
    /// non-empty sub-ranges of roughly equal total *weight* (fault count
    /// plus capped root-cone size, computed at build time). Workers pull
    /// chunk indices from a shared atomic cursor, so oversplitting
    /// relative to the thread count (several chunks per thread) is what
    /// turns the static split into a work-stealing one: a thread that
    /// lands on a cheap chunk simply takes another.
    pub(crate) fn chunk_group_ranges(&self, chunks: usize) -> Vec<(usize, usize)> {
        let n_groups = self.group_roots.len();
        let chunks = chunks.clamp(1, n_groups.max(1));
        let total: u64 = self.group_weights.iter().sum();
        let mut out = Vec::with_capacity(chunks);
        let mut g = 0usize;
        let mut acc = 0u64;
        for c in 0..chunks {
            let start = g;
            let target = total / chunks as u64 * (c as u64 + 1);
            while g < n_groups && (acc < target || g == start) {
                acc += self.group_weights[g];
                g += 1;
            }
            if c + 1 == chunks {
                g = n_groups;
            }
            if g > start {
                out.push((start, g));
            }
        }
        debug_assert_eq!(out.iter().map(|&(a, b)| b - a).sum::<usize>(), n_groups);
        out
    }

    /// Simulates with fault dropping, matching the per-fault engine's
    /// [`DropOutcome`] exactly at every width.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width does not match the circuit.
    pub fn with_dropping(&self, patterns: &PatternSet) -> DropOutcome {
        match self.width {
            SimWidth::W1 => self.with_dropping_w::<1>(patterns),
            SimWidth::W2 => self.with_dropping_w::<2>(patterns),
            SimWidth::W4 => self.with_dropping_w::<4>(patterns),
            SimWidth::W8 => self.with_dropping_w::<8>(patterns),
        }
    }

    fn with_dropping_w<const N: usize>(&self, patterns: &PatternSet) -> DropOutcome {
        self.assert_width(patterns);
        let mut scratch = StemScratch::<N>::new(self.view());
        let mut first: Vec<Option<u32>> = vec![None; self.faults.len()];
        let mut remaining = self.faults.len();
        for sb in 0..patterns.num_superblocks(N) {
            if remaining == 0 {
                break;
            }
            self.sim_superblock(patterns, sb, &mut scratch);
            let mask = patterns.valid_mask_wide::<N>(sb);
            let StemScratch { good, sens, obs, .. } = &mut scratch;
            for g in 0..self.group_roots.len() {
                let root = self.group_roots[g];
                let lo = self.group_index[g] as usize;
                let hi = self.group_index[g + 1] as usize;
                for &fault in &self.group_faults[lo..hi] {
                    if first[fault as usize].is_some() {
                        continue;
                    }
                    let rd = self.stem_diff(fault, good, sens) & mask;
                    if rd.is_zero() {
                        continue;
                    }
                    let det = rd & self.stem_obs(good, root, obs);
                    if !det.is_zero() {
                        // Lanes are in pattern order, so the first set
                        // bit is the earliest detecting pattern — the
                        // same index the 64-bit loop reports.
                        first[fault as usize] =
                            Some((sb * N * 64) as u32 + det.first_set_bit());
                        remaining -= 1;
                    }
                }
            }
        }
        DropOutcome {
            first_detection: first,
        }
    }

    /// n-detection simulation, matching the per-fault engine exactly at
    /// every width.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the pattern width does not match.
    pub fn n_detect(&self, patterns: &PatternSet, n: u32) -> NDetectOutcome {
        assert!(n > 0, "n-detection requires n >= 1");
        match self.width {
            SimWidth::W1 => self.n_detect_w::<1>(patterns, n),
            SimWidth::W2 => self.n_detect_w::<2>(patterns, n),
            SimWidth::W4 => self.n_detect_w::<4>(patterns, n),
            SimWidth::W8 => self.n_detect_w::<8>(patterns, n),
        }
    }

    fn n_detect_w<const N: usize>(&self, patterns: &PatternSet, n: u32) -> NDetectOutcome {
        self.assert_width(patterns);
        let mut scratch = StemScratch::<N>::new(self.view());
        let mut counts = vec![0u32; self.faults.len()];
        let mut remaining = self.faults.len();
        for sb in 0..patterns.num_superblocks(N) {
            if remaining == 0 {
                break;
            }
            self.sim_superblock(patterns, sb, &mut scratch);
            let mask = patterns.valid_mask_wide::<N>(sb);
            let StemScratch { good, sens, obs, .. } = &mut scratch;
            for g in 0..self.group_roots.len() {
                let root = self.group_roots[g];
                let lo = self.group_index[g] as usize;
                let hi = self.group_index[g + 1] as usize;
                for &fault in &self.group_faults[lo..hi] {
                    if counts[fault as usize] >= n {
                        continue; // saturated: dropped
                    }
                    let rd = self.stem_diff(fault, good, sens) & mask;
                    if rd.is_zero() {
                        continue;
                    }
                    let det = rd & self.stem_obs(good, root, obs);
                    if !det.is_zero() {
                        // Saturating-min arithmetic is associative over
                        // the block split, so counting a superblock at
                        // once equals counting its blocks in sequence.
                        let c = &mut counts[fault as usize];
                        *c = (*c + det.count_ones()).min(n);
                        if *c >= n {
                            remaining -= 1;
                        }
                    }
                }
            }
        }
        NDetectOutcome { counts, n }
    }

    fn assert_width(&self, patterns: &PatternSet) {
        assert_eq!(
            patterns.num_inputs(),
            self.view().inputs().len(),
            "pattern width does not match circuit input count"
        );
    }

    /// Loads one superblock: good-machine sweep forward, then
    /// [`prepare_block`](Self::prepare_block).
    fn sim_superblock<const N: usize>(
        &self,
        patterns: &PatternSet,
        superblock: usize,
        s: &mut StemScratch<N>,
    ) {
        logic::load_input_words_w(patterns, superblock, &mut s.input_words);
        logic::simulate_superblock_csr(self.view(), &s.input_words, &mut s.good);
        self.prepare_block(s);
    }

    /// Prepares detection for a superblock whose good-machine words are
    /// already in `s.good`: sensitization sweep backward plus a fresh
    /// observability memo generation, using the engine's whole-fault-list
    /// path marking.
    pub(crate) fn prepare_block<const N: usize>(&self, s: &mut StemScratch<N>) {
        self.prepare_block_with(s, &self.sens_needed);
    }

    /// Like [`prepare_block`](Self::prepare_block) but with a
    /// caller-supplied path marking. `sens_needed` must cover (at least)
    /// every fault whose detection words will be read for this block —
    /// the batched ATPG drop session passes a marking restricted to its
    /// still-active faults so the reverse sweep skips retired regions.
    pub(crate) fn prepare_block_with<const N: usize>(
        &self,
        s: &mut StemScratch<N>,
        sens_needed: &[bool],
    ) {
        self.prepare_sens(&s.good, &mut s.sens, sens_needed);
        s.obs.advance_memo();
    }

    /// The reverse sensitization sweep alone, reading good-machine
    /// words from `good` (which may be a shared slice rather than the
    /// scratch's own buffer — the region-parallel split shares one good
    /// machine across threads).
    fn prepare_sens<const N: usize>(
        &self,
        good: &[SimWord<N>],
        sens: &mut [SimWord<N>],
        sens_needed: &[bool],
    ) {
        debug_assert_eq!(sens_needed.len(), self.view().num_nodes());
        // Reverse sweep: every reader sits at a higher position, so its
        // sensitization word is final before its drivers are visited.
        // Only positions on some covered fault's path to its root are
        // consumed; everything else is skipped.
        for p in (0..self.view().num_nodes()).rev() {
            if self.is_root[p] {
                sens[p] = SimWord::ONES;
            } else if sens_needed[p] {
                let (g, pin) = self.reader[p];
                sens[p] = sens[g as usize]
                    & pin_sens(
                        good,
                        self.view().kind_at(g as usize),
                        self.view().fanins_at(g as usize),
                        pin as usize,
                    );
            }
        }
    }

    /// The engine's whole-fault-list path marking (positions whose
    /// sensitization word some fault's stem-difference computation
    /// reads).
    pub(crate) fn sens_needed(&self) -> &[bool] {
        &self.sens_needed
    }

    /// Rewrites `out` as the path marking restricted to `active`: for
    /// each active fault, its effect position and the unique path from
    /// there to its FFR root. A block prepared with this marking answers
    /// detection queries for exactly the active faults.
    pub(crate) fn mark_sens_needed(&self, active: &[FaultId], out: &mut Vec<bool>) {
        out.clear();
        out.resize(self.view().num_nodes(), false);
        for &id in active {
            let mut p = match self.fault_info[id.index()].site {
                PosSite::Stem { pos } => pos as usize,
                PosSite::Branch { gate_pos, .. } => gate_pos as usize,
            };
            loop {
                if out[p] {
                    break;
                }
                out[p] = true;
                if self.is_root[p] {
                    break;
                }
                p = self.reader[p].0 as usize;
            }
        }
    }

    /// The word of patterns (unmasked) on which `fault` flips its FFR
    /// stem.
    #[inline]
    fn stem_diff<const N: usize>(
        &self,
        fault: u32,
        good: &[SimWord<N>],
        sens: &[SimWord<N>],
    ) -> SimWord<N> {
        let info = self.fault_info[fault as usize];
        let stuck = SimWord::splat(info.stuck_word);
        match info.site {
            PosSite::Stem { pos } => {
                let p = pos as usize;
                (good[p] ^ stuck) & sens[p]
            }
            PosSite::Branch { gate_pos, pin } => {
                let g = gate_pos as usize;
                let fanins = self.view().fanins_at(g);
                let src = fanins[pin as usize] as usize;
                (good[src] ^ stuck)
                    & pin_sens(good, self.view().kind_at(g), fanins, pin as usize)
                    & sens[g]
            }
        }
    }

    /// Visits every `(fault, detection_word)` pair with a non-zero word
    /// for the current superblock. With `active`, faults whose flag is
    /// `false` are skipped entirely (no stem-difference computation, and
    /// regions with only inactive faults never pay an observability
    /// walk).
    pub(crate) fn for_each_detection<const N: usize>(
        &self,
        valid_mask: SimWord<N>,
        s: &mut StemScratch<N>,
        active: Option<&[bool]>,
        mut visit: impl FnMut(u32, SimWord<N>),
    ) {
        let StemScratch { good, sens, obs, .. } = s;
        self.detect_groups(
            0,
            self.group_roots.len(),
            valid_mask,
            good,
            sens,
            obs,
            active,
            &mut visit,
        );
    }

    /// Prepares its own scratch once, then detects group chunks pulled
    /// from the shared `cursor` against a **shared** good-machine slice,
    /// appending every `(fault, word)` hit to `out`. This is the
    /// work-stealing region-parallel flush primitive: every fault lives
    /// in exactly one chunk, so concurrent callers (each with its own
    /// `out`) produce hits for disjoint faults and the caller's merge
    /// is order-independent.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn detect_chunks_shared_good<const N: usize>(
        &self,
        chunks: &[(usize, usize)],
        cursor: &AtomicUsize,
        valid_mask: SimWord<N>,
        good: &[SimWord<N>],
        sens_needed: &[bool],
        active: Option<&[bool]>,
        out: &mut Vec<(u32, SimWord<N>)>,
    ) {
        let mut scratch = StemScratch::<N>::new(self.view());
        self.prepare_sens(good, &mut scratch.sens, sens_needed);
        scratch.obs.advance_memo();
        let StemScratch { sens, obs, .. } = &mut scratch;
        loop {
            let c = cursor.fetch_add(1, Ordering::Relaxed);
            if c >= chunks.len() {
                break;
            }
            let (g0, g1) = chunks[c];
            self.detect_groups(g0, g1, valid_mask, good, sens, obs, active, &mut |f, w| {
                out.push((f, w));
            });
        }
    }

    /// [`for_each_detection`](Self::for_each_detection) over the group
    /// range `g0..g1` only — the region-parallel primitive (each thread
    /// owns a disjoint range, hence disjoint faults).
    #[allow(clippy::too_many_arguments)]
    fn detect_groups<const N: usize>(
        &self,
        g0: usize,
        g1: usize,
        valid_mask: SimWord<N>,
        good: &[SimWord<N>],
        sens: &[SimWord<N>],
        obs: &mut ObsScratch<N>,
        active: Option<&[bool]>,
        visit: &mut impl FnMut(u32, SimWord<N>),
    ) {
        for g in g0..g1 {
            let root = self.group_roots[g];
            let lo = self.group_index[g] as usize;
            let hi = self.group_index[g + 1] as usize;
            for &fault in &self.group_faults[lo..hi] {
                if let Some(flags) = active {
                    if !flags[fault as usize] {
                        continue;
                    }
                }
                let rd = self.stem_diff(fault, good, sens) & valid_mask;
                if rd.is_zero() {
                    continue;
                }
                let det = rd & self.stem_obs(good, root, obs);
                if !det.is_zero() {
                    visit(fault, det);
                }
            }
        }
    }

    /// The observability word of a stem: the patterns on which
    /// complementing the stem's value changes at least one primary
    /// output. Memoized per superblock in `s`; with stem merging, the
    /// whole dominator chain above the stem is filled (and shared by
    /// every stem whose chain passes through it).
    fn stem_obs<const N: usize>(
        &self,
        good: &[SimWord<N>],
        root: u32,
        s: &mut ObsScratch<N>,
    ) -> SimWord<N> {
        let view = self.view();
        let ipdom = self.circuit.post_dominators();
        // Ascend the dominator chain to the first memoized or terminal
        // position, stacking the unresolved ones; then fill downward.
        // The chain ascends strictly in position, so this terminates.
        debug_assert!(s.chain.is_empty());
        let mut p = root as usize;
        let mut obs = loop {
            if s.memo_stamp[p] == s.memo_version {
                break s.memo[p];
            }
            // A stem that is itself a primary output is observed
            // directly on every pattern; one that reaches no output is
            // never observed.
            let terminal = if view.is_output_at(p) {
                Some(SimWord::ONES)
            } else if !view.reaches_output(p) {
                Some(SimWord::ZERO)
            } else if !self.merge_stems || ipdom[p] == POST_DOM_SINK {
                // No usable dominator: pay the full cone walk.
                Some(compute_stem_obs_cone(view, good, p, s))
            } else {
                None
            };
            if let Some(o) = terminal {
                s.memo[p] = o;
                s.memo_stamp[p] = s.memo_version;
                break o;
            }
            s.chain.push(p as u32);
            p = ipdom[p] as usize;
        };
        while let Some(q) = s.chain.pop() {
            let q = q as usize;
            // obs(q) = (does the flip at q reach its dominator d?) AND
            // (does a flip at d reach an output?). The dominator is a
            // cut, so the factorization is exact — see the dominator
            // module docs for the argument.
            let o = if obs.is_zero() {
                SimWord::ZERO
            } else {
                self.walk_to_dominator(good, q, ipdom[q] as usize, s) & obs
            };
            s.memo[q] = o;
            s.memo_stamp[q] = s.memo_version;
            obs = o;
        }
        obs
    }

    /// Propagates the complemented value of `start` through its fanout
    /// cone **up to its immediate post-dominator `dom` only** and
    /// returns the difference word observed at `dom`. Nothing past
    /// `dom` is expanded: every affected position that reaches an
    /// output does so through `dom`, so positions past it either equal
    /// `dom` or are pruned by the reachability mask.
    fn walk_to_dominator<const N: usize>(
        &self,
        good: &[SimWord<N>],
        start: usize,
        dom: usize,
        s: &mut ObsScratch<N>,
    ) -> SimWord<N> {
        let view = self.view();
        s.version = s.version.wrapping_add(1);
        if s.version == 0 {
            s.stamp.fill(0);
            s.queued.fill(0);
            s.version = 1;
        }
        let v = s.version;
        s.faulty[start] = !good[start];
        s.stamp[start] = v;
        let mut result = SimWord::ZERO;

        let mut lo = usize::MAX;
        let mut hi = 0usize;
        for &g in view.fanouts_at(start) {
            if s.queued[g as usize] != v && view.reaches_output(g as usize) {
                s.queued[g as usize] = v;
                let lvl = view.level_at(g as usize) as usize;
                s.frontier[lvl].push(g);
                lo = lo.min(lvl);
                hi = hi.max(lvl);
            }
        }
        if lo == usize::MAX {
            return SimWord::ZERO;
        }
        let mut lvl = lo;
        while lvl <= hi {
            let mut bucket = std::mem::take(&mut s.frontier[lvl]);
            for &p in &bucket {
                let p = p as usize;
                let kind = view.kind_at(p);
                let val = eval_with_pos_w(kind, view.fanins_at(p), |f| {
                    if s.stamp[f as usize] == v {
                        s.faulty[f as usize]
                    } else {
                        good[f as usize]
                    }
                });
                if p == dom {
                    // The dominator is where the restricted walk stops:
                    // record its difference, expand nothing.
                    result = val ^ good[p];
                    continue;
                }
                let d = val ^ good[p];
                if !d.is_zero() {
                    // The dominator cut guarantees no other affected
                    // position ahead of `dom` is an output.
                    debug_assert!(
                        !view.is_output_at(p),
                        "output inside a dominator-restricted walk"
                    );
                    s.faulty[p] = val;
                    s.stamp[p] = v;
                    for &g in view.fanouts_at(p) {
                        if s.queued[g as usize] != v && view.reaches_output(g as usize) {
                            s.queued[g as usize] = v;
                            let glvl = view.level_at(g as usize) as usize;
                            s.frontier[glvl].push(g);
                            hi = hi.max(glvl);
                        }
                    }
                }
            }
            bucket.clear();
            s.frontier[lvl] = bucket;
            lvl += 1;
        }
        result
    }
}

/// ORs a wide detection word into the 64-bit-blocked matrix: lane `k`
/// of superblock `sb` is block `sb * N + k`. Invalid lanes are zero
/// (masked upstream), so no lane ever lands outside the matrix.
fn or_word_wide<const N: usize>(
    matrix: &mut DetectionMatrix,
    fault: u32,
    superblock: usize,
    word: SimWord<N>,
) {
    for k in 0..N {
        let w = word.lane(k);
        if w != 0 {
            matrix.or_word(FaultId::new(fault as usize), superblock * N + k, w);
        }
    }
}

/// The word of patterns on which a change at `pin` of the gate (alone)
/// changes the gate's output, given good values of the other pins.
#[inline]
fn pin_sens<const N: usize>(
    good: &[SimWord<N>],
    kind: GateKind,
    fanins: &[u32],
    pin: usize,
) -> SimWord<N> {
    match kind {
        GateKind::Buf | GateKind::Not | GateKind::Xor | GateKind::Xnor => SimWord::ONES,
        GateKind::And | GateKind::Nand => {
            let mut acc = SimWord::ONES;
            for (i, &f) in fanins.iter().enumerate() {
                if i != pin {
                    acc &= good[f as usize];
                }
            }
            acc
        }
        GateKind::Or | GateKind::Nor => {
            let mut acc = SimWord::ZERO;
            for (i, &f) in fanins.iter().enumerate() {
                if i != pin {
                    acc |= good[f as usize];
                }
            }
            !acc
        }
        GateKind::Input | GateKind::Const0 | GateKind::Const1 => {
            panic!("{kind:?} has no fanin pins")
        }
    }
}

/// The unrestricted observability walk: propagates the complemented
/// stem through its whole fanout cone to the primary outputs. Used for
/// stems whose immediate post-dominator is the virtual sink (and for
/// everything when stem merging is disabled).
fn compute_stem_obs_cone<const N: usize>(
    view: &LevelizedCsr,
    good: &[SimWord<N>],
    root: usize,
    s: &mut ObsScratch<N>,
) -> SimWord<N> {
    s.version = s.version.wrapping_add(1);
    if s.version == 0 {
        s.stamp.fill(0);
        s.queued.fill(0);
        s.version = 1;
    }
    let v = s.version;
    s.faulty[root] = !good[root];
    s.stamp[root] = v;
    let mut obs = SimWord::ZERO;

    // Fanouts always sit on strictly higher levels, so draining the
    // level buckets in ascending order processes every event after all
    // of its faulty fanins — no heap needed.
    let mut lo = usize::MAX;
    let mut hi = 0usize;
    for &g in view.fanouts_at(root) {
        if s.queued[g as usize] != v && view.reaches_output(g as usize) {
            s.queued[g as usize] = v;
            let lvl = view.level_at(g as usize) as usize;
            s.frontier[lvl].push(g);
            lo = lo.min(lvl);
            hi = hi.max(lvl);
        }
    }
    if lo == usize::MAX {
        return SimWord::ZERO;
    }
    let mut lvl = lo;
    while lvl <= hi {
        let mut bucket = std::mem::take(&mut s.frontier[lvl]);
        for &p in &bucket {
            let p = p as usize;
            let kind = view.kind_at(p);
            let val = eval_with_pos_w(kind, view.fanins_at(p), |f| {
                if s.stamp[f as usize] == v {
                    s.faulty[f as usize]
                } else {
                    good[f as usize]
                }
            });
            let d = val ^ good[p];
            if !d.is_zero() {
                s.faulty[p] = val;
                s.stamp[p] = v;
                if view.is_output_at(p) {
                    obs |= d;
                }
                for &g in view.fanouts_at(p) {
                    if s.queued[g as usize] != v && view.reaches_output(g as usize) {
                        s.queued[g as usize] = v;
                        let glvl = view.level_at(g as usize) as usize;
                        s.frontier[glvl].push(g);
                        hi = hi.max(glvl);
                    }
                }
            }
        }
        bucket.clear();
        s.frontier[lvl] = bucket;
        lvl += 1;
    }
    obs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineKind, FaultSimulator};
    use adi_netlist::bench_format;
    use adi_netlist::fault::Fault;
    use adi_netlist::{Netlist, NetlistBuilder};

    fn compile(netlist: &Netlist) -> CompiledCircuit {
        CompiledCircuit::compile(netlist.clone())
    }

    fn equivalence(src: &str, name: &str, inputs: usize) {
        let n = bench_format::parse(src, name).unwrap();
        let faults = FaultList::full(&n);
        let patterns = PatternSet::exhaustive(inputs);
        let per_fault = FaultSimulator::for_circuit_with_engine(&compile(&n), &faults, EngineKind::PerFault)
            .no_drop_matrix(&patterns);
        for width in SimWidth::ALL {
            let stem = StemRegionEngine::for_circuit(&compile(&n), &faults)
                .with_width(width)
                .no_drop_matrix(&patterns);
            assert_eq!(per_fault, stem, "{name} width {width}");
        }
    }

    #[test]
    fn fanout_reconvergence() {
        // Reconvergent fanout: the classic case where naive critical
        // path tracing beyond the stem would be wrong.
        equivalence(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ns = AND(a, b)\np = NOT(s)\nq = BUF(s)\ny = AND(p, q)\n",
            "reconv",
            2,
        );
    }

    #[test]
    fn xor_regions() {
        equivalence(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt = XOR(a, b)\ny = XNOR(t, c)\n",
            "xorchain",
            3,
        );
    }

    #[test]
    fn output_with_fanout_is_observed_everywhere() {
        // g is both a PO and an internal stem: obs(g) must be all-ones.
        equivalence(
            "INPUT(a)\nOUTPUT(g)\nOUTPUT(h)\ng = NOT(a)\nh = BUF(g)\n",
            "po_fan",
            1,
        );
    }

    #[test]
    fn dead_logic_region() {
        equivalence(
            "INPUT(a)\nINPUT(x)\nOUTPUT(y)\ndead = NOT(x)\ny = BUF(a)\n",
            "dead",
            2,
        );
    }

    #[test]
    fn constant_sources() {
        equivalence(
            "INPUT(a)\nOUTPUT(y)\nk = CONST1()\ny = AND(a, k)\n",
            "consts",
            1,
        );
    }

    #[test]
    fn duplicate_fanin_gate() {
        // AND(a, a): `a` reaches the gate through two pins, so it is a
        // root and per-pin sensitization never crosses the duplication.
        let mut b = NetlistBuilder::new("dup");
        let a = b.add_input("a");
        let y = b.add_gate(GateKind::And, "y", &[a, a]).unwrap();
        b.mark_output(y);
        let n = b.build().unwrap();
        let faults = FaultList::full(&n);
        let patterns = PatternSet::exhaustive(1);
        let per_fault = FaultSimulator::for_circuit_with_engine(&compile(&n), &faults, EngineKind::PerFault)
            .no_drop_matrix(&patterns);
        let stem = StemRegionEngine::for_circuit(&compile(&n), &faults).no_drop_matrix(&patterns);
        assert_eq!(per_fault, stem);
    }

    #[test]
    fn groups_partition_the_fault_list() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ns = AND(a, b)\np = NOT(s)\nq = BUF(s)\ny = AND(p, q)\n";
        let n = bench_format::parse(src, "reconv").unwrap();
        let faults = FaultList::full(&n);
        let engine = StemRegionEngine::for_circuit(&compile(&n), &faults);
        let total: usize = (0..engine.group_roots.len())
            .map(|g| (engine.group_index[g + 1] - engine.group_index[g]) as usize)
            .sum();
        assert_eq!(total, faults.len());
        assert_eq!(engine.group_faults.len(), faults.len());
        assert!(engine.num_fault_regions() <= faults.len());
        // Roots strictly ascend, fault ids ascend within groups.
        assert!(engine.group_roots.windows(2).all(|w| w[0] < w[1]));
        for g in 0..engine.group_roots.len() {
            let lo = engine.group_index[g] as usize;
            let hi = engine.group_index[g + 1] as usize;
            assert!(engine.group_faults[lo..hi].windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn explicit_branch_fault_list() {
        let src = "INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\ny = BUF(a)\nz = NOT(a)\n";
        let n = bench_format::parse(src, "fan").unwrap();
        let y = n.find_node("y").unwrap();
        let faults = FaultList::from_faults(vec![
            Fault::branch_at(y, 0, false),
            Fault::branch_at(y, 0, true),
        ]);
        let patterns = PatternSet::exhaustive(1);
        let per_fault = FaultSimulator::for_circuit_with_engine(&compile(&n), &faults, EngineKind::PerFault)
            .no_drop_matrix(&patterns);
        let stem = StemRegionEngine::for_circuit(&compile(&n), &faults).no_drop_matrix(&patterns);
        assert_eq!(per_fault, stem);
    }

    #[test]
    fn empty_pattern_set() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
        let n = bench_format::parse(src, "inv").unwrap();
        let faults = FaultList::collapsed(&n);
        let engine = StemRegionEngine::for_circuit(&compile(&n), &faults);
        for width in SimWidth::ALL {
            let engine = engine.clone().with_width(width);
            let matrix = engine.no_drop_matrix(&PatternSet::new(1));
            assert_eq!(matrix.num_patterns(), 0);
            assert_eq!(matrix.num_detected_faults(), 0);
            let par = engine.no_drop_matrix_parallel(&PatternSet::new(1), 4);
            assert_eq!(par.num_detected_faults(), 0);
        }
    }

    #[test]
    fn merged_and_unmerged_observability_agree() {
        // Chained diamonds make long dominator chains; merged stems
        // must produce the identical matrix.
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n\
                   s1 = AND(a, b)\np1 = NOT(s1)\nq1 = BUF(s1)\nj1 = OR(p1, q1)\n\
                   p2 = NOT(j1)\nq2 = BUF(j1)\ny = XOR(p2, q2)\n";
        let n = bench_format::parse(src, "chained").unwrap();
        let faults = FaultList::full(&n);
        let patterns = PatternSet::exhaustive(2);
        let circuit = compile(&n);
        let merged = StemRegionEngine::for_circuit(&circuit, &faults).no_drop_matrix(&patterns);
        let unmerged = StemRegionEngine::for_circuit(&circuit, &faults)
            .with_stem_merging(false)
            .no_drop_matrix(&patterns);
        assert_eq!(merged, unmerged);
    }

    #[test]
    fn region_parallel_matches_serial_on_one_block() {
        // One 64-pattern block and many threads: exactly the shape the
        // region split exists for.
        let src = "INPUT(G1)\nINPUT(G2)\nINPUT(G3)\nINPUT(G6)\nINPUT(G7)\n\
                   OUTPUT(G22)\nOUTPUT(G23)\n\
                   G10 = NAND(G1, G3)\nG11 = NAND(G3, G6)\nG16 = NAND(G2, G11)\n\
                   G19 = NAND(G11, G7)\nG22 = NAND(G10, G16)\nG23 = NAND(G16, G19)\n";
        let n = bench_format::parse(src, "c17").unwrap();
        let faults = FaultList::full(&n);
        let patterns = PatternSet::random(5, 60, 3);
        let engine = StemRegionEngine::for_circuit(&compile(&n), &faults);
        let serial = engine.no_drop_matrix(&patterns);
        for threads in [2, 3, 7, 16] {
            assert_eq!(
                serial,
                engine.no_drop_matrix_region_parallel(&patterns, threads),
                "region x{threads}"
            );
            assert_eq!(
                serial,
                engine.no_drop_matrix_parallel(&patterns, threads),
                "auto x{threads}"
            );
        }
    }

    #[test]
    fn width_default_comes_from_environment() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
        let n = bench_format::parse(src, "inv").unwrap();
        let faults = FaultList::collapsed(&n);
        let engine = StemRegionEngine::for_circuit(&compile(&n), &faults);
        assert_eq!(engine.width(), SimWidth::from_env());
        assert_eq!(engine.with_width(SimWidth::W8).width(), SimWidth::W8);
    }

    #[test]
    #[should_panic(expected = "pattern width")]
    fn width_mismatch_panics() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";
        let n = bench_format::parse(src, "and2").unwrap();
        let faults = FaultList::collapsed(&n);
        let engine = StemRegionEngine::for_circuit(&compile(&n), &faults);
        let _ = engine.no_drop_matrix(&PatternSet::exhaustive(3));
    }
}
