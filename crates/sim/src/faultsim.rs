//! Stuck-at fault simulation over two interchangeable engines.
//!
//! For each 64-pattern block the good machine is simulated once; fault
//! effects are then propagated to the primary outputs. Two engines are
//! offered behind [`EngineKind`], both running on the cache-friendly
//! [`LevelizedCsr`] position space and producing **bit-identical**
//! results:
//!
//! * [`EngineKind::PerFault`] — classic PPSFP: each fault is injected
//!   individually and its effect walked through its fanout cone with
//!   event-driven word operations. Cost: one cone walk *per fault* per
//!   block. This engine doubles as the differential-testing oracle for
//!   the stem-region engine.
//! * [`EngineKind::StemRegion`] — the two-level engine (the default):
//!   inside each fanout-free region every fault's detectability at the
//!   FFR stem is computed bit-parallelly from forward sensitization
//!   words (no event queue), then a single observability propagation
//!   *per stem* carries the effect to the outputs. Cost: one cone walk
//!   *per FFR* per block, an asymptotic win since regions average
//!   several faults each. See [`StemRegionEngine`].
//!
//! Three drive modes are offered by [`FaultSimulator`]:
//!
//! * [`FaultSimulator::no_drop_matrix`] — full simulation **without fault
//!   dropping**, producing the [`DetectionMatrix`] from which the paper
//!   computes `ndet(u)` and `D(f)`.
//! * [`FaultSimulator::with_dropping`] — classic coverage simulation where
//!   each fault is dropped at its first detection.
//! * [`FaultSimulator::n_detect`] — drop after `n` detections, the cheaper
//!   estimate the paper mentions as an alternative to no-drop simulation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use adi_netlist::fault::{Fault, FaultId, FaultList, FaultSite};
use adi_netlist::{CompiledCircuit, GateKind, LevelizedCsr, Netlist};

use crate::logic::{self, eval_with_pos, eval_with_pos_w, PosGood};
use crate::stem::StemRegionEngine;
use crate::word::{SimWord, SimWidth};
use crate::{DetectionMatrix, Pattern, PatternSet};

/// Which fault-propagation engine a [`FaultSimulator`] drives.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum EngineKind {
    /// One event-driven cone propagation per fault per block (the
    /// classic PPSFP engine, kept as the differential-testing oracle).
    PerFault,
    /// Bit-parallel fault detectability per fanout-free region plus one
    /// observability propagation per stem per block. Bit-identical to
    /// [`PerFault`](EngineKind::PerFault), asymptotically faster.
    #[default]
    StemRegion,
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineKind::PerFault => write!(f, "per-fault"),
            EngineKind::StemRegion => write!(f, "stem-region"),
        }
    }
}

/// Reusable per-thread scratch buffers for per-fault injection, bound to
/// one compiled circuit (whose [`LevelizedCsr`] view the hot loops run
/// on).
///
/// Create one with [`SimScratch::for_circuit`] and reuse it across calls
/// to the single-pattern API to avoid repeated allocation.
#[derive(Clone, Debug)]
pub struct SimScratch {
    pub(crate) circuit: CompiledCircuit,
    pub(crate) buf: ScratchBuf,
}

/// The allocation-heavy part of [`SimScratch`], split out so the view
/// and the buffers can be borrowed independently.
#[derive(Clone, Debug)]
pub(crate) struct ScratchBuf {
    faulty: Vec<u64>,
    stamp: Vec<u32>,
    queued: Vec<u32>,
    version: u32,
    queue: BinaryHeap<Reverse<u32>>,
    good_single: Vec<u64>,
    input_words: Vec<u64>,
}

impl SimScratch {
    /// Allocates scratch buffers for `circuit`, sharing its levelized
    /// view (an `Arc` bump, no per-call setup).
    pub fn for_circuit(circuit: &CompiledCircuit) -> Self {
        let buf = ScratchBuf::new(circuit.view());
        SimScratch {
            circuit: circuit.clone(),
            buf,
        }
    }

}

impl ScratchBuf {
    pub(crate) fn new(view: &LevelizedCsr) -> Self {
        let n = view.num_nodes();
        ScratchBuf {
            faulty: vec![0; n],
            stamp: vec![0; n],
            queued: vec![0; n],
            version: 0,
            queue: BinaryHeap::new(),
            good_single: vec![0; n],
            input_words: Vec::with_capacity(view.inputs().len()),
        }
    }
}

/// Result of fault simulation with dropping.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DropOutcome {
    /// For each fault, the index of the first detecting pattern, or `None`
    /// if the pattern set does not detect it.
    pub first_detection: Vec<Option<u32>>,
}

impl DropOutcome {
    /// Number of detected faults.
    pub fn num_detected(&self) -> usize {
        self.first_detection.iter().filter(|d| d.is_some()).count()
    }

    /// Fault coverage (detected / total). Zero for an empty fault list.
    pub fn coverage(&self) -> f64 {
        if self.first_detection.is_empty() {
            0.0
        } else {
            self.num_detected() as f64 / self.first_detection.len() as f64
        }
    }

    /// Number of new faults first detected by each pattern.
    pub fn new_detections(&self, num_patterns: usize) -> Vec<u32> {
        let mut out = vec![0u32; num_patterns];
        for d in self.first_detection.iter().flatten() {
            out[*d as usize] += 1;
        }
        out
    }
}

/// Result of n-detection fault simulation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NDetectOutcome {
    /// Per-fault detection count, saturated at the configured `n`.
    pub counts: Vec<u32>,
    /// The saturation threshold used.
    pub n: u32,
}

impl NDetectOutcome {
    /// Number of faults detected at least once.
    pub fn num_detected(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Number of faults detected at least `n` times (saturated).
    pub fn num_saturated(&self) -> usize {
        self.counts.iter().filter(|&&c| c >= self.n).count()
    }
}

/// A stuck-at fault simulator bound to one compiled circuit and fault
/// list.
///
/// [`FaultSimulator::for_circuit`] selects the default engine
/// ([`EngineKind::StemRegion`]); use
/// [`FaultSimulator::for_circuit_with_engine`] to pick one explicitly.
/// Both engines produce bit-identical results. Construction is cheap
/// (an `Arc` bump of the compilation), so building one simulator per
/// pattern set is fine — the expensive artifacts live in the
/// [`CompiledCircuit`].
///
/// # Examples
///
/// ```
/// use adi_netlist::{bench_format, CompiledCircuit, fault::FaultList};
/// use adi_sim::{EngineKind, FaultSimulator, PatternSet};
///
/// # fn main() -> Result<(), adi_netlist::NetlistError> {
/// let n = bench_format::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n", "or2")?;
/// let circuit = CompiledCircuit::compile(n);
/// let faults = circuit.collapsed_faults();
/// let sim = FaultSimulator::for_circuit(&circuit, faults);
/// let drop = sim.with_dropping(&PatternSet::exhaustive(2));
/// assert_eq!(drop.coverage(), 1.0); // exhaustive patterns detect everything
///
/// // The two engines agree bit for bit.
/// let oracle = FaultSimulator::for_circuit_with_engine(&circuit, faults, EngineKind::PerFault);
/// let patterns = PatternSet::exhaustive(2);
/// assert_eq!(sim.no_drop_matrix(&patterns), oracle.no_drop_matrix(&patterns));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct FaultSimulator<'a> {
    circuit: CompiledCircuit,
    faults: &'a FaultList,
    engine: EngineKind,
    width: SimWidth,
}

impl<'a> FaultSimulator<'a> {
    /// Creates a simulator for `faults` of `circuit` with the default
    /// engine ([`EngineKind::StemRegion`]).
    ///
    /// # Panics
    ///
    /// Panics if any fault references a node outside the circuit.
    pub fn for_circuit(circuit: &CompiledCircuit, faults: &'a FaultList) -> Self {
        Self::for_circuit_with_engine(circuit, faults, EngineKind::default())
    }

    /// Creates a simulator for `faults` of `circuit` driving the given
    /// `engine`.
    ///
    /// # Panics
    ///
    /// Panics if any fault references a node outside the circuit.
    pub fn for_circuit_with_engine(
        circuit: &CompiledCircuit,
        faults: &'a FaultList,
        engine: EngineKind,
    ) -> Self {
        for (_, f) in faults.iter() {
            assert!(
                f.effect_node().index() < circuit.netlist().num_nodes(),
                "fault {f} outside netlist"
            );
        }
        FaultSimulator {
            circuit: circuit.clone(),
            faults,
            engine,
            width: SimWidth::default(),
        }
    }

    /// Returns the simulator with its stem-region simulation word width
    /// set to `width` (builder style). All widths are bit-identical;
    /// the per-fault oracle engine always runs 64-bit words regardless.
    #[must_use]
    pub fn with_width(mut self, width: SimWidth) -> Self {
        self.width = width;
        self
    }

    /// The simulation word width the stem-region engine runs at.
    pub fn width(&self) -> SimWidth {
        self.width
    }

    /// The compiled circuit being simulated.
    pub fn circuit(&self) -> &CompiledCircuit {
        &self.circuit
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        self.circuit.netlist()
    }

    /// The fault list being simulated.
    pub fn faults(&self) -> &'a FaultList {
        self.faults
    }

    /// The engine this simulator drives.
    pub fn engine_kind(&self) -> EngineKind {
        self.engine
    }

    /// Simulates every fault under every pattern **without dropping** and
    /// returns the full detection matrix.
    pub fn no_drop_matrix(&self, patterns: &PatternSet) -> DetectionMatrix {
        match self.engine {
            EngineKind::PerFault => self.no_drop_matrix_per_fault(patterns),
            EngineKind::StemRegion => StemRegionEngine::for_circuit(&self.circuit, self.faults)
                .with_width(self.width)
                .no_drop_matrix(patterns),
        }
    }

    fn no_drop_matrix_per_fault(&self, patterns: &PatternSet) -> DetectionMatrix {
        // One span for the whole call: the per-fault engine's inner
        // loop (fault x block) is far too fine-grained to span.
        static SPAN_NO_DROP: adi_obs::SpanSite = adi_obs::SpanSite::new("sim.no_drop");
        let _span = SPAN_NO_DROP.enter();
        let view = self.circuit.view();
        let mut buf = ScratchBuf::new(view);
        let good = PosGood::compute(view, patterns);
        let mut matrix = DetectionMatrix::new(self.faults.len(), patterns.len());
        let n_blocks = patterns.num_blocks();
        for (id, fault) in self.faults.iter() {
            for block in 0..n_blocks {
                let mask = patterns.valid_mask(block);
                let w = detect_block_impl(view, good.block(block), fault, mask, &mut buf);
                if w != 0 {
                    matrix.or_word(id, block, w);
                }
            }
        }
        matrix
    }

    /// Like [`no_drop_matrix`](Self::no_drop_matrix) but splits the work
    /// across `threads` OS threads — by fault range for the per-fault
    /// engine, by pattern-block range for the stem-region engine.
    ///
    /// The result is identical to the serial version.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn no_drop_matrix_parallel(
        &self,
        patterns: &PatternSet,
        threads: usize,
    ) -> DetectionMatrix {
        assert!(threads > 0, "at least one thread required");
        match self.engine {
            EngineKind::PerFault => self.no_drop_matrix_parallel_per_fault(patterns, threads),
            EngineKind::StemRegion => StemRegionEngine::for_circuit(&self.circuit, self.faults)
                .with_width(self.width)
                .no_drop_matrix_parallel(patterns, threads),
        }
    }

    fn no_drop_matrix_parallel_per_fault(
        &self,
        patterns: &PatternSet,
        threads: usize,
    ) -> DetectionMatrix {
        let n_faults = self.faults.len();
        if threads == 1 || n_faults < 2 * threads {
            return self.no_drop_matrix_per_fault(patterns);
        }
        let view = self.circuit.view();
        let good = PosGood::compute(view, patterns);
        let mut matrix = DetectionMatrix::new(n_faults, patterns.len());
        let n_blocks = patterns.num_blocks();
        let chunk = n_faults.div_ceil(threads);
        let faults = self.faults;
        let (view_ref, good_ref, patterns_ref) = (view, &good, patterns);
        std::thread::scope(|scope| {
            for (ci, rows) in matrix.rows_chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    let mut buf = ScratchBuf::new(view_ref);
                    let base = ci * chunk;
                    let count = rows.len() / n_blocks.max(1);
                    for k in 0..count {
                        let fault = faults.fault(FaultId::new(base + k));
                        for block in 0..n_blocks {
                            let mask = patterns_ref.valid_mask(block);
                            let w = detect_block_impl(
                                view_ref,
                                good_ref.block(block),
                                fault,
                                mask,
                                &mut buf,
                            );
                            rows[k * n_blocks + block] = w;
                        }
                    }
                });
            }
        });
        matrix
    }

    /// Simulates with fault dropping: each fault is retired at its first
    /// detecting pattern.
    pub fn with_dropping(&self, patterns: &PatternSet) -> DropOutcome {
        match self.engine {
            EngineKind::PerFault => self.with_dropping_per_fault(patterns),
            EngineKind::StemRegion => StemRegionEngine::for_circuit(&self.circuit, self.faults)
                .with_width(self.width)
                .with_dropping(patterns),
        }
    }

    fn with_dropping_per_fault(&self, patterns: &PatternSet) -> DropOutcome {
        let view = self.circuit.view();
        let buf = &mut ScratchBuf::new(view);
        let mut good = vec![0u64; view.num_nodes()];
        let mut input_words = vec![0u64; patterns.num_inputs()];
        let mut first: Vec<Option<u32>> = vec![None; self.faults.len()];
        let mut active: Vec<FaultId> = self.faults.ids().collect();
        for block in 0..patterns.num_blocks() {
            if active.is_empty() {
                break;
            }
            logic::load_input_words(patterns, block, &mut input_words);
            logic::simulate_block_csr(view, &input_words, &mut good);
            let mask = patterns.valid_mask(block);
            active.retain(|&id| {
                let fault = self.faults.fault(id);
                let w = detect_block_impl(view, &good, fault, mask, buf);
                if w != 0 {
                    first[id.index()] =
                        Some((block * 64) as u32 + w.trailing_zeros());
                    false
                } else {
                    true
                }
            });
        }
        DropOutcome {
            first_detection: first,
        }
    }

    /// n-detection simulation: a fault is retired once detected by `n`
    /// distinct patterns. Counts saturate at `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn n_detect(&self, patterns: &PatternSet, n: u32) -> NDetectOutcome {
        assert!(n > 0, "n-detection requires n >= 1");
        match self.engine {
            EngineKind::PerFault => self.n_detect_per_fault(patterns, n),
            EngineKind::StemRegion => StemRegionEngine::for_circuit(&self.circuit, self.faults)
                .with_width(self.width)
                .n_detect(patterns, n),
        }
    }

    fn n_detect_per_fault(&self, patterns: &PatternSet, n: u32) -> NDetectOutcome {
        let view = self.circuit.view();
        let buf = &mut ScratchBuf::new(view);
        let mut good = vec![0u64; view.num_nodes()];
        let mut input_words = vec![0u64; patterns.num_inputs()];
        let mut counts = vec![0u32; self.faults.len()];
        let mut active: Vec<FaultId> = self.faults.ids().collect();
        for block in 0..patterns.num_blocks() {
            if active.is_empty() {
                break;
            }
            logic::load_input_words(patterns, block, &mut input_words);
            logic::simulate_block_csr(view, &input_words, &mut good);
            let mask = patterns.valid_mask(block);
            active.retain(|&id| {
                let fault = self.faults.fault(id);
                let w = detect_block_impl(view, &good, fault, mask, buf);
                let c = &mut counts[id.index()];
                *c = (*c + w.count_ones()).min(n);
                *c < n
            });
        }
        NDetectOutcome { counts, n }
    }

    /// Simulates a single input vector against a subset of faults and
    /// returns the detected ones, preserving `active` order.
    ///
    /// This is the primitive used by the test-generation driver to drop
    /// faults after each new test. It always runs the per-fault engine:
    /// for a single vector the stem-region engine's per-block setup cost
    /// cannot amortize.
    /// # Panics
    ///
    /// Panics if the pattern width does not match the circuit, or if
    /// `scratch` was built for a different netlist (the scratch embeds
    /// the levelized view of its circuit).
    pub fn detect_pattern(
        &self,
        pattern: &Pattern,
        active: &[FaultId],
        scratch: &mut SimScratch,
    ) -> Vec<FaultId> {
        assert_eq!(pattern.len(), self.circuit.netlist().num_inputs());
        let SimScratch { circuit, buf } = scratch;
        let view = circuit.view();
        assert_eq!(
            view.num_nodes(),
            self.circuit.netlist().num_nodes(),
            "scratch built for a different netlist"
        );
        let mut words = std::mem::take(&mut buf.input_words);
        words.clear();
        words.extend(pattern.iter().map(u64::from));
        let mut good = std::mem::take(&mut buf.good_single);
        logic::simulate_block_csr(view, &words, &mut good);
        let detected = active
            .iter()
            .copied()
            .filter(|&id| {
                let fault = self.faults.fault(id);
                detect_block_impl(view, &good, fault, 1, buf) != 0
            })
            .collect();
        buf.good_single = good;
        buf.input_words = words;
        detected
    }

    /// Convenience: does `pattern` detect `fault`?
    ///
    /// Pass a reusable scratch when querying in a loop; with `None` a
    /// fresh [`SimScratch`] over this simulator's compiled circuit is
    /// allocated for this one query.
    pub fn detects(
        &self,
        pattern: &Pattern,
        fault_id: FaultId,
        scratch: Option<&mut SimScratch>,
    ) -> bool {
        match scratch {
            Some(s) => !self.detect_pattern(pattern, &[fault_id], s).is_empty(),
            None => {
                let mut s = SimScratch::for_circuit(&self.circuit);
                !self.detect_pattern(pattern, &[fault_id], &mut s).is_empty()
            }
        }
    }
}

/// Evaluates a gate with one pin overridden to a constant word; `good`
/// and `fanins` are in CSR position space.
#[inline]
pub(crate) fn eval_override_pos(
    good: &[u64],
    kind: GateKind,
    fanins: &[u32],
    pin: usize,
    ov: u64,
) -> u64 {
    match kind {
        GateKind::Buf => {
            debug_assert_eq!(pin, 0);
            ov
        }
        GateKind::Not => {
            debug_assert_eq!(pin, 0);
            !ov
        }
        GateKind::And | GateKind::Nand => {
            let mut acc = !0u64;
            for (i, &f) in fanins.iter().enumerate() {
                acc &= if i == pin { ov } else { good[f as usize] };
            }
            if kind == GateKind::Nand {
                !acc
            } else {
                acc
            }
        }
        GateKind::Or | GateKind::Nor => {
            let mut acc = 0u64;
            for (i, &f) in fanins.iter().enumerate() {
                acc |= if i == pin { ov } else { good[f as usize] };
            }
            if kind == GateKind::Nor {
                !acc
            } else {
                acc
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let mut acc = 0u64;
            for (i, &f) in fanins.iter().enumerate() {
                acc ^= if i == pin { ov } else { good[f as usize] };
            }
            if kind == GateKind::Xnor {
                !acc
            } else {
                acc
            }
        }
        GateKind::Input | GateKind::Const0 | GateKind::Const1 => {
            panic!("{kind:?} has no fanin pins")
        }
    }
}

/// Event-driven per-fault propagation in CSR position space: positions
/// are assigned in topological level order, so the position itself is
/// the event priority.
pub(crate) fn detect_block_impl(
    view: &LevelizedCsr,
    good: &[u64],
    fault: Fault,
    valid_mask: u64,
    s: &mut ScratchBuf,
) -> u64 {
    s.version = s.version.wrapping_add(1);
    if s.version == 0 {
        s.stamp.fill(0);
        s.queued.fill(0);
        s.version = 1;
    }
    let v = s.version;
    let stuck_word = if fault.stuck_value() { !0u64 } else { 0u64 };

    let (inject, faulty_word) = match fault.site() {
        FaultSite::Stem(n) => (view.position(n), stuck_word),
        FaultSite::Branch { gate, pin } => {
            let gp = view.position(gate);
            let w = eval_override_pos(
                good,
                view.kind_at(gp),
                view.fanins_at(gp),
                pin as usize,
                stuck_word,
            );
            (gp, w)
        }
    };

    let diff = (faulty_word ^ good[inject]) & valid_mask;
    // A fault whose effect site reaches no primary output can never be
    // observed: exit before any propagation.
    if diff == 0 || !view.reaches_output(inject) {
        return 0;
    }
    s.faulty[inject] = faulty_word;
    s.stamp[inject] = v;
    let mut detected = if view.is_output_at(inject) { diff } else { 0 };

    debug_assert!(s.queue.is_empty());
    for &g in view.fanouts_at(inject) {
        if s.queued[g as usize] != v && view.reaches_output(g as usize) {
            s.queued[g as usize] = v;
            s.queue.push(Reverse(g));
        }
    }

    while let Some(Reverse(p)) = s.queue.pop() {
        let p = p as usize;
        let kind = view.kind_at(p);
        let val = eval_with_pos(kind, view.fanins_at(p), |f| {
            if s.stamp[f as usize] == v {
                s.faulty[f as usize]
            } else {
                good[f as usize]
            }
        });
        let d = (val ^ good[p]) & valid_mask;
        if d != 0 {
            s.faulty[p] = val;
            s.stamp[p] = v;
            if view.is_output_at(p) {
                detected |= d;
            }
            for &g in view.fanouts_at(p) {
                if s.queued[g as usize] != v && view.reaches_output(g as usize) {
                    s.queued[g as usize] = v;
                    s.queue.push(Reverse(g));
                }
            }
        }
    }
    detected
}

/// Wide-word sibling of [`ScratchBuf`]: reusable buffers for
/// [`detect_superblock_impl`], generic over the lane count. The 64-bit
/// oracle path keeps its own scalar buffers so it stays byte-identical.
#[derive(Clone, Debug)]
pub(crate) struct WideScratchBuf<const N: usize> {
    faulty: Vec<SimWord<N>>,
    stamp: Vec<u32>,
    queued: Vec<u32>,
    version: u32,
    queue: BinaryHeap<Reverse<u32>>,
}

impl<const N: usize> WideScratchBuf<N> {
    pub(crate) fn new(view: &LevelizedCsr) -> Self {
        let n = view.num_nodes();
        WideScratchBuf {
            faulty: vec![SimWord::ZERO; n],
            stamp: vec![0; n],
            queued: vec![0; n],
            version: 0,
            queue: BinaryHeap::new(),
        }
    }
}

/// Evaluates a gate with one pin overridden to a constant word, on wide
/// words; `good` and `fanins` are in CSR position space.
#[inline]
pub(crate) fn eval_override_pos_w<const N: usize>(
    good: &[SimWord<N>],
    kind: GateKind,
    fanins: &[u32],
    pin: usize,
    ov: SimWord<N>,
) -> SimWord<N> {
    match kind {
        GateKind::Buf => {
            debug_assert_eq!(pin, 0);
            ov
        }
        GateKind::Not => {
            debug_assert_eq!(pin, 0);
            !ov
        }
        GateKind::And | GateKind::Nand => {
            let mut acc = SimWord::ONES;
            for (i, &f) in fanins.iter().enumerate() {
                acc &= if i == pin { ov } else { good[f as usize] };
            }
            if kind == GateKind::Nand {
                !acc
            } else {
                acc
            }
        }
        GateKind::Or | GateKind::Nor => {
            let mut acc = SimWord::ZERO;
            for (i, &f) in fanins.iter().enumerate() {
                acc |= if i == pin { ov } else { good[f as usize] };
            }
            if kind == GateKind::Nor {
                !acc
            } else {
                acc
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let mut acc = SimWord::ZERO;
            for (i, &f) in fanins.iter().enumerate() {
                acc ^= if i == pin { ov } else { good[f as usize] };
            }
            if kind == GateKind::Xnor {
                !acc
            } else {
                acc
            }
        }
        GateKind::Input | GateKind::Const0 | GateKind::Const1 => {
            panic!("{kind:?} has no fanin pins")
        }
    }
}

/// [`detect_block_impl`] on wide words: event-driven per-fault
/// propagation over one superblock. Identical algorithm, lane-wise.
pub(crate) fn detect_superblock_impl<const N: usize>(
    view: &LevelizedCsr,
    good: &[SimWord<N>],
    fault: Fault,
    valid_mask: SimWord<N>,
    s: &mut WideScratchBuf<N>,
) -> SimWord<N> {
    s.version = s.version.wrapping_add(1);
    if s.version == 0 {
        s.stamp.fill(0);
        s.queued.fill(0);
        s.version = 1;
    }
    let v = s.version;
    let stuck_word = SimWord::splat(if fault.stuck_value() { !0u64 } else { 0u64 });

    let (inject, faulty_word) = match fault.site() {
        FaultSite::Stem(n) => (view.position(n), stuck_word),
        FaultSite::Branch { gate, pin } => {
            let gp = view.position(gate);
            let w = eval_override_pos_w(
                good,
                view.kind_at(gp),
                view.fanins_at(gp),
                pin as usize,
                stuck_word,
            );
            (gp, w)
        }
    };

    let diff = (faulty_word ^ good[inject]) & valid_mask;
    if diff.is_zero() || !view.reaches_output(inject) {
        return SimWord::ZERO;
    }
    s.faulty[inject] = faulty_word;
    s.stamp[inject] = v;
    let mut detected = if view.is_output_at(inject) {
        diff
    } else {
        SimWord::ZERO
    };

    debug_assert!(s.queue.is_empty());
    for &g in view.fanouts_at(inject) {
        if s.queued[g as usize] != v && view.reaches_output(g as usize) {
            s.queued[g as usize] = v;
            s.queue.push(Reverse(g));
        }
    }

    while let Some(Reverse(p)) = s.queue.pop() {
        let p = p as usize;
        let kind = view.kind_at(p);
        let val = eval_with_pos_w(kind, view.fanins_at(p), |f| {
            if s.stamp[f as usize] == v {
                s.faulty[f as usize]
            } else {
                good[f as usize]
            }
        });
        let d = (val ^ good[p]) & valid_mask;
        if !d.is_zero() {
            s.faulty[p] = val;
            s.stamp[p] = v;
            if view.is_output_at(p) {
                detected |= d;
            }
            for &g in view.fanouts_at(p) {
                if s.queued[g as usize] != v && view.reaches_output(g as usize) {
                    s.queued[g as usize] = v;
                    s.queue.push(Reverse(g));
                }
            }
        }
    }
    detected
}

#[cfg(test)]
mod tests {
    use super::*;
    use adi_netlist::bench_format;
    use adi_netlist::fault::Fault;

    const C17: &str = "
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

    fn c17() -> Netlist {
        bench_format::parse(C17, "c17").unwrap()
    }

    fn compile(netlist: &Netlist) -> CompiledCircuit {
        CompiledCircuit::compile(netlist.clone())
    }

    /// Brute-force oracle: simulate the faulty circuit explicitly.
    fn oracle_detects(netlist: &Netlist, fault: Fault, pattern: &Pattern) -> bool {
        let good = logic::evaluate(netlist, pattern.as_slice());
        // Faulty evaluation in topo order with explicit overrides.
        let mut faulty = vec![false; netlist.num_nodes()];
        for (i, &pi) in netlist.inputs().iter().enumerate() {
            faulty[pi.index()] = pattern.get(i);
        }
        if let FaultSite::Stem(nf) = fault.site() {
            if netlist.is_input(nf) {
                faulty[nf.index()] = fault.stuck_value();
            }
        }
        for &node in netlist.topo_order() {
            let kind = netlist.kind(node);
            if kind == GateKind::Input {
                continue;
            }
            let vals: Vec<bool> = netlist
                .fanins(node)
                .iter()
                .enumerate()
                .map(|(pin, &f)| {
                    if let FaultSite::Branch { gate, pin: fp } = fault.site() {
                        if gate == node && fp as usize == pin {
                            return fault.stuck_value();
                        }
                    }
                    faulty[f.index()]
                })
                .collect();
            let mut out = kind.eval_bools(&vals);
            if fault.site() == FaultSite::Stem(node) {
                out = fault.stuck_value();
            }
            faulty[node.index()] = out;
        }
        netlist
            .outputs()
            .iter()
            .any(|&o| faulty[o.index()] != good[o.index()])
    }

    #[test]
    fn matches_oracle_on_c17_exhaustive() {
        let n = c17();
        let faults = FaultList::full(&n);
        let patterns = PatternSet::exhaustive(5);
        for engine in [EngineKind::PerFault, EngineKind::StemRegion] {
            let sim = FaultSimulator::for_circuit_with_engine(&compile(&n), &faults, engine);
            let matrix = sim.no_drop_matrix(&patterns);
            for (id, fault) in faults.iter() {
                for p in 0..patterns.len() {
                    let pattern = patterns.get(p);
                    assert_eq!(
                        matrix.detected(id, p),
                        oracle_detects(&n, fault, &pattern),
                        "[{engine}] fault {fault} pattern {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn c17_exhaustive_full_coverage() {
        // c17 is irredundant: every collapsed fault is detectable.
        let n = c17();
        let faults = FaultList::collapsed(&n);
        for engine in [EngineKind::PerFault, EngineKind::StemRegion] {
            let sim = FaultSimulator::for_circuit_with_engine(&compile(&n), &faults, engine);
            let drop = sim.with_dropping(&PatternSet::exhaustive(5));
            assert_eq!(drop.num_detected(), faults.len(), "[{engine}]");
            assert!((drop.coverage() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let n = c17();
        let faults = FaultList::full(&n);
        let patterns = PatternSet::random(5, 100, 3);
        for engine in [EngineKind::PerFault, EngineKind::StemRegion] {
            let sim = FaultSimulator::for_circuit_with_engine(&compile(&n), &faults, engine);
            let serial = sim.no_drop_matrix(&patterns);
            for threads in [2, 3, 8] {
                let par = sim.no_drop_matrix_parallel(&patterns, threads);
                assert_eq!(serial, par, "[{engine}] threads={threads}");
            }
        }
    }

    #[test]
    fn engines_agree_on_c17() {
        let n = c17();
        let faults = FaultList::full(&n);
        let patterns = PatternSet::random(5, 200, 77);
        let a = FaultSimulator::for_circuit_with_engine(&compile(&n), &faults, EngineKind::PerFault)
            .no_drop_matrix(&patterns);
        let b = FaultSimulator::for_circuit_with_engine(&compile(&n), &faults, EngineKind::StemRegion)
            .no_drop_matrix(&patterns);
        assert_eq!(a, b);
    }

    #[test]
    fn dropping_matches_no_drop_first_detection() {
        let n = c17();
        let faults = FaultList::collapsed(&n);
        let patterns = PatternSet::random(5, 70, 9);
        for engine in [EngineKind::PerFault, EngineKind::StemRegion] {
            let sim = FaultSimulator::for_circuit_with_engine(&compile(&n), &faults, engine);
            let matrix = sim.no_drop_matrix(&patterns);
            let drop = sim.with_dropping(&patterns);
            for id in faults.ids() {
                let expect = matrix.detecting_patterns(id).next().map(|p| p as u32);
                assert_eq!(
                    drop.first_detection[id.index()],
                    expect,
                    "[{engine}] fault {id}"
                );
            }
        }
    }

    #[test]
    fn n_detect_counts_match_matrix() {
        let n = c17();
        let faults = FaultList::collapsed(&n);
        let patterns = PatternSet::exhaustive(5);
        for engine in [EngineKind::PerFault, EngineKind::StemRegion] {
            let sim = FaultSimulator::for_circuit_with_engine(&compile(&n), &faults, engine);
            let matrix = sim.no_drop_matrix(&patterns);
            let nd = sim.n_detect(&patterns, 4);
            for id in faults.ids() {
                let full = matrix.detection_count(id) as u32;
                assert_eq!(nd.counts[id.index()], full.min(4), "[{engine}] fault {id}");
            }
            assert_eq!(nd.num_detected(), faults.len());
        }
    }

    #[test]
    fn detect_pattern_subset() {
        let n = c17();
        let faults = FaultList::collapsed(&n);
        let sim = FaultSimulator::for_circuit(&compile(&n), &faults);
        let patterns = PatternSet::exhaustive(5);
        let matrix = sim.no_drop_matrix(&patterns);
        let mut scratch = SimScratch::for_circuit(&compile(&n));
        let active: Vec<FaultId> = faults.ids().collect();
        for p in [0usize, 7, 19, 31] {
            let detected = sim.detect_pattern(&patterns.get(p), &active, &mut scratch);
            let expected: Vec<FaultId> = faults
                .ids()
                .filter(|&id| matrix.detected(id, p))
                .collect();
            assert_eq!(detected, expected, "pattern {p}");
        }
    }

    #[test]
    fn undetectable_fault_reports_nothing() {
        // y = OR(a, NOT(a)) is constant 1: y s-a-1 is undetectable.
        let src = "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = OR(a, na)\n";
        let n = bench_format::parse(src, "taut").unwrap();
        let y = n.find_node("y").unwrap();
        let faults = FaultList::from_faults(vec![Fault::stem_at(y, true)]);
        for engine in [EngineKind::PerFault, EngineKind::StemRegion] {
            let sim = FaultSimulator::for_circuit_with_engine(&compile(&n), &faults, engine);
            let drop = sim.with_dropping(&PatternSet::exhaustive(1));
            assert_eq!(drop.num_detected(), 0, "[{engine}]");
        }
    }

    #[test]
    fn branch_fault_differs_from_stem() {
        // a fans out to two gates; a branch s-a-0 on one path must not
        // disturb the other path.
        let src = "INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\ny = BUF(a)\nz = BUF(a)\n";
        let n = bench_format::parse(src, "fan").unwrap();
        let ygate = n.find_node("y").unwrap();
        let branch = Fault::branch_at(ygate, 0, false);
        let faults = FaultList::from_faults(vec![branch]);
        let sim = FaultSimulator::for_circuit(&compile(&n), &faults);
        let mut scratch = SimScratch::for_circuit(&compile(&n));
        let p1 = Pattern::new(vec![true]);
        let det = sim.detect_pattern(&p1, &[FaultId::new(0)], &mut scratch);
        assert_eq!(det.len(), 1);
        // With a=0 the branch fault is invisible.
        let p0 = Pattern::new(vec![false]);
        let det = sim.detect_pattern(&p0, &[FaultId::new(0)], &mut scratch);
        assert!(det.is_empty());
    }

    #[test]
    fn detects_with_and_without_scratch() {
        let n = c17();
        let faults = FaultList::collapsed(&n);
        let sim = FaultSimulator::for_circuit(&compile(&n), &faults);
        let patterns = PatternSet::exhaustive(5);
        let matrix = sim.no_drop_matrix(&patterns);
        let mut scratch = SimScratch::for_circuit(&compile(&n));
        for p in [0usize, 13, 31] {
            let pattern = patterns.get(p);
            for id in faults.ids() {
                let expect = matrix.detected(id, p);
                assert_eq!(sim.detects(&pattern, id, None), expect);
                assert_eq!(sim.detects(&pattern, id, Some(&mut scratch)), expect);
            }
        }
    }

    #[test]
    fn fault_on_dead_logic_is_never_detected() {
        // `dead` drives nothing: any fault there must report no detection
        // through the reachability-mask early exit.
        let src = "INPUT(a)\nINPUT(x)\nOUTPUT(y)\ndead = NOT(x)\ny = BUF(a)\n";
        let n = bench_format::parse(src, "dead").unwrap();
        let dead = n.find_node("dead").unwrap();
        let x = n.find_node("x").unwrap();
        let faults = FaultList::from_faults(vec![
            Fault::stem_at(dead, false),
            Fault::stem_at(dead, true),
            Fault::stem_at(x, false),
            Fault::stem_at(x, true),
        ]);
        for engine in [EngineKind::PerFault, EngineKind::StemRegion] {
            let sim = FaultSimulator::for_circuit_with_engine(&compile(&n), &faults, engine);
            let matrix = sim.no_drop_matrix(&PatternSet::exhaustive(2));
            for id in faults.ids() {
                assert!(!matrix.detected_any(id), "[{engine}] fault {id}");
            }
        }
    }

    #[test]
    fn default_engine_is_stem_region() {
        let n = c17();
        let faults = FaultList::collapsed(&n);
        let sim = FaultSimulator::for_circuit(&compile(&n), &faults);
        assert_eq!(sim.engine_kind(), EngineKind::StemRegion);
        assert_eq!(EngineKind::default().to_string(), "stem-region");
        assert_eq!(EngineKind::PerFault.to_string(), "per-fault");
    }

    #[test]
    fn drop_outcome_new_detections_sum() {
        let n = c17();
        let faults = FaultList::collapsed(&n);
        let patterns = PatternSet::exhaustive(5);
        let sim = FaultSimulator::for_circuit(&compile(&n), &faults);
        let drop = sim.with_dropping(&patterns);
        let news = drop.new_detections(patterns.len());
        let total: u32 = news.iter().sum();
        assert_eq!(total as usize, drop.num_detected());
    }
}
