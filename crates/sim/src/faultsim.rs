//! Parallel-pattern single-fault propagation (PPSFP) fault simulation.
//!
//! For each 64-pattern block the good machine is simulated once; each fault
//! is then injected and its effect propagated through its fanout cone with
//! event-driven, level-ordered word operations. A fault is detected in a
//! pattern iff some primary output differs from the good machine.
//!
//! Three drive modes are offered:
//!
//! * [`FaultSimulator::no_drop_matrix`] — full simulation **without fault
//!   dropping**, producing the [`DetectionMatrix`] from which the paper
//!   computes `ndet(u)` and `D(f)`.
//! * [`FaultSimulator::with_dropping`] — classic coverage simulation where
//!   each fault is dropped at its first detection.
//! * [`FaultSimulator::n_detect`] — drop after `n` detections, the cheaper
//!   estimate the paper mentions as an alternative to no-drop simulation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use adi_netlist::fault::{Fault, FaultId, FaultList, FaultSite};
use adi_netlist::{GateKind, Netlist, NodeId};

use crate::logic::{self, GoodValues};
use crate::{DetectionMatrix, Pattern, PatternSet};

/// Reusable per-thread scratch buffers for fault injection.
///
/// Create one with [`SimScratch::new`] and reuse it across calls to the
/// single-pattern API to avoid repeated allocation.
#[derive(Clone, Debug)]
pub struct SimScratch {
    faulty: Vec<u64>,
    stamp: Vec<u32>,
    queued: Vec<u32>,
    version: u32,
    queue: BinaryHeap<Reverse<(u32, u32)>>,
    good_single: Vec<u64>,
}

impl SimScratch {
    /// Allocates scratch buffers sized for `netlist`.
    pub fn new(netlist: &Netlist) -> Self {
        let n = netlist.num_nodes();
        SimScratch {
            faulty: vec![0; n],
            stamp: vec![0; n],
            queued: vec![0; n],
            version: 0,
            queue: BinaryHeap::new(),
            good_single: vec![0; n],
        }
    }
}

/// Result of fault simulation with dropping.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DropOutcome {
    /// For each fault, the index of the first detecting pattern, or `None`
    /// if the pattern set does not detect it.
    pub first_detection: Vec<Option<u32>>,
}

impl DropOutcome {
    /// Number of detected faults.
    pub fn num_detected(&self) -> usize {
        self.first_detection.iter().filter(|d| d.is_some()).count()
    }

    /// Fault coverage (detected / total). Zero for an empty fault list.
    pub fn coverage(&self) -> f64 {
        if self.first_detection.is_empty() {
            0.0
        } else {
            self.num_detected() as f64 / self.first_detection.len() as f64
        }
    }

    /// Number of new faults first detected by each pattern.
    pub fn new_detections(&self, num_patterns: usize) -> Vec<u32> {
        let mut out = vec![0u32; num_patterns];
        for d in self.first_detection.iter().flatten() {
            out[*d as usize] += 1;
        }
        out
    }
}

/// Result of n-detection fault simulation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NDetectOutcome {
    /// Per-fault detection count, saturated at the configured `n`.
    pub counts: Vec<u32>,
    /// The saturation threshold used.
    pub n: u32,
}

impl NDetectOutcome {
    /// Number of faults detected at least once.
    pub fn num_detected(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Number of faults detected at least `n` times (saturated).
    pub fn num_saturated(&self) -> usize {
        self.counts.iter().filter(|&&c| c >= self.n).count()
    }
}

/// A stuck-at fault simulator bound to one netlist and fault list.
///
/// # Examples
///
/// ```
/// use adi_netlist::{bench_format, fault::FaultList};
/// use adi_sim::{FaultSimulator, PatternSet};
///
/// # fn main() -> Result<(), adi_netlist::NetlistError> {
/// let n = bench_format::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n", "or2")?;
/// let faults = FaultList::collapsed(&n);
/// let sim = FaultSimulator::new(&n, &faults);
/// let drop = sim.with_dropping(&PatternSet::exhaustive(2));
/// assert_eq!(drop.coverage(), 1.0); // exhaustive patterns detect everything
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug)]
pub struct FaultSimulator<'a> {
    netlist: &'a Netlist,
    faults: &'a FaultList,
}

impl<'a> FaultSimulator<'a> {
    /// Creates a simulator for `faults` of `netlist`.
    ///
    /// # Panics
    ///
    /// Panics if any fault references a node outside the netlist.
    pub fn new(netlist: &'a Netlist, faults: &'a FaultList) -> Self {
        for (_, f) in faults.iter() {
            assert!(
                f.effect_node().index() < netlist.num_nodes(),
                "fault {f} outside netlist"
            );
        }
        FaultSimulator { netlist, faults }
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// The fault list being simulated.
    pub fn faults(&self) -> &'a FaultList {
        self.faults
    }

    /// Simulates every fault under every pattern **without dropping** and
    /// returns the full detection matrix.
    pub fn no_drop_matrix(&self, patterns: &PatternSet) -> DetectionMatrix {
        let good = GoodValues::compute(self.netlist, patterns);
        let mut matrix = DetectionMatrix::new(self.faults.len(), patterns.len());
        let mut scratch = SimScratch::new(self.netlist);
        let n_blocks = patterns.num_blocks();
        for (id, fault) in self.faults.iter() {
            for block in 0..n_blocks {
                let mask = patterns.valid_mask(block);
                let w = self.detect_block(good.block(block), fault, mask, &mut scratch);
                if w != 0 {
                    matrix.or_word(id, block, w);
                }
            }
        }
        matrix
    }

    /// Like [`no_drop_matrix`](Self::no_drop_matrix) but splits the fault
    /// list across `threads` OS threads.
    ///
    /// The result is identical to the serial version.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn no_drop_matrix_parallel(
        &self,
        patterns: &PatternSet,
        threads: usize,
    ) -> DetectionMatrix {
        assert!(threads > 0, "at least one thread required");
        let n_faults = self.faults.len();
        if threads == 1 || n_faults < 2 * threads {
            return self.no_drop_matrix(patterns);
        }
        let good = GoodValues::compute(self.netlist, patterns);
        let mut matrix = DetectionMatrix::new(n_faults, patterns.len());
        let n_blocks = patterns.num_blocks();
        let chunk = n_faults.div_ceil(threads);
        let netlist = self.netlist;
        let faults = self.faults;
        let good_ref = &good;
        let patterns_ref = patterns;
        std::thread::scope(|scope| {
            for (ci, rows) in matrix.rows_chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    let mut scratch = SimScratch::new(netlist);
                    let base = ci * chunk;
                    let count = rows.len() / n_blocks.max(1);
                    for k in 0..count {
                        let fault = faults.fault(FaultId::new(base + k));
                        for block in 0..n_blocks {
                            let mask = patterns_ref.valid_mask(block);
                            let w = detect_block_impl(
                                netlist,
                                good_ref.block(block),
                                fault,
                                mask,
                                &mut scratch,
                            );
                            rows[k * n_blocks + block] = w;
                        }
                    }
                });
            }
        });
        matrix
    }

    /// Simulates with fault dropping: each fault is retired at its first
    /// detecting pattern.
    pub fn with_dropping(&self, patterns: &PatternSet) -> DropOutcome {
        let good = GoodValues::compute(self.netlist, patterns);
        let mut scratch = SimScratch::new(self.netlist);
        let mut first: Vec<Option<u32>> = vec![None; self.faults.len()];
        let mut active: Vec<FaultId> = self.faults.ids().collect();
        for block in 0..patterns.num_blocks() {
            if active.is_empty() {
                break;
            }
            let mask = patterns.valid_mask(block);
            let slice = good.block(block);
            active.retain(|&id| {
                let fault = self.faults.fault(id);
                let w = self.detect_block(slice, fault, mask, &mut scratch);
                if w != 0 {
                    first[id.index()] =
                        Some((block * 64) as u32 + w.trailing_zeros());
                    false
                } else {
                    true
                }
            });
        }
        DropOutcome {
            first_detection: first,
        }
    }

    /// n-detection simulation: a fault is retired once detected by `n`
    /// distinct patterns. Counts saturate at `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn n_detect(&self, patterns: &PatternSet, n: u32) -> NDetectOutcome {
        assert!(n > 0, "n-detection requires n >= 1");
        let good = GoodValues::compute(self.netlist, patterns);
        let mut scratch = SimScratch::new(self.netlist);
        let mut counts = vec![0u32; self.faults.len()];
        let mut active: Vec<FaultId> = self.faults.ids().collect();
        for block in 0..patterns.num_blocks() {
            if active.is_empty() {
                break;
            }
            let mask = patterns.valid_mask(block);
            let slice = good.block(block);
            active.retain(|&id| {
                let fault = self.faults.fault(id);
                let w = self.detect_block(slice, fault, mask, &mut scratch);
                let c = &mut counts[id.index()];
                *c = (*c + w.count_ones()).min(n);
                *c < n
            });
        }
        NDetectOutcome { counts, n }
    }

    /// Simulates a single input vector against a subset of faults and
    /// returns the detected ones, preserving `active` order.
    ///
    /// This is the primitive used by the test-generation driver to drop
    /// faults after each new test.
    pub fn detect_pattern(
        &self,
        pattern: &Pattern,
        active: &[FaultId],
        scratch: &mut SimScratch,
    ) -> Vec<FaultId> {
        assert_eq!(pattern.len(), self.netlist.num_inputs());
        let words: Vec<u64> = pattern.iter().map(u64::from).collect();
        let mut good = std::mem::take(&mut scratch.good_single);
        logic::simulate_block(self.netlist, &words, &mut good);
        let detected = active
            .iter()
            .copied()
            .filter(|&id| {
                let fault = self.faults.fault(id);
                self.detect_block(&good, fault, 1, scratch) != 0
            })
            .collect();
        scratch.good_single = good;
        detected
    }

    /// Convenience: does `pattern` detect `fault`?
    pub fn detects(&self, pattern: &Pattern, fault_id: FaultId) -> bool {
        let mut scratch = SimScratch::new(self.netlist);
        !self
            .detect_pattern(pattern, &[fault_id], &mut scratch)
            .is_empty()
    }

    #[inline]
    fn detect_block(
        &self,
        good: &[u64],
        fault: Fault,
        valid_mask: u64,
        scratch: &mut SimScratch,
    ) -> u64 {
        detect_block_impl(self.netlist, good, fault, valid_mask, scratch)
    }
}

/// Evaluates `kind` over `fanins` with values supplied by `value`.
#[inline]
fn eval_with(kind: GateKind, fanins: &[NodeId], value: impl Fn(NodeId) -> u64) -> u64 {
    match kind {
        GateKind::Input => panic!("inputs are loaded, not evaluated"),
        GateKind::Buf => value(fanins[0]),
        GateKind::Not => !value(fanins[0]),
        GateKind::And => fanins.iter().fold(!0u64, |acc, &f| acc & value(f)),
        GateKind::Nand => !fanins.iter().fold(!0u64, |acc, &f| acc & value(f)),
        GateKind::Or => fanins.iter().fold(0u64, |acc, &f| acc | value(f)),
        GateKind::Nor => !fanins.iter().fold(0u64, |acc, &f| acc | value(f)),
        GateKind::Xor => fanins.iter().fold(0u64, |acc, &f| acc ^ value(f)),
        GateKind::Xnor => !fanins.iter().fold(0u64, |acc, &f| acc ^ value(f)),
        GateKind::Const0 => 0,
        GateKind::Const1 => !0,
    }
}

/// Evaluates a gate with one pin overridden to a constant word.
#[inline]
fn eval_override(
    good: &[u64],
    kind: GateKind,
    fanins: &[NodeId],
    pin: usize,
    ov: u64,
) -> u64 {
    match kind {
        GateKind::Buf => {
            debug_assert_eq!(pin, 0);
            ov
        }
        GateKind::Not => {
            debug_assert_eq!(pin, 0);
            !ov
        }
        GateKind::And | GateKind::Nand => {
            let mut acc = !0u64;
            for (i, &f) in fanins.iter().enumerate() {
                acc &= if i == pin { ov } else { good[f.index()] };
            }
            if kind == GateKind::Nand {
                !acc
            } else {
                acc
            }
        }
        GateKind::Or | GateKind::Nor => {
            let mut acc = 0u64;
            for (i, &f) in fanins.iter().enumerate() {
                acc |= if i == pin { ov } else { good[f.index()] };
            }
            if kind == GateKind::Nor {
                !acc
            } else {
                acc
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let mut acc = 0u64;
            for (i, &f) in fanins.iter().enumerate() {
                acc ^= if i == pin { ov } else { good[f.index()] };
            }
            if kind == GateKind::Xnor {
                !acc
            } else {
                acc
            }
        }
        GateKind::Input | GateKind::Const0 | GateKind::Const1 => {
            panic!("{kind:?} has no fanin pins")
        }
    }
}

fn detect_block_impl(
    netlist: &Netlist,
    good: &[u64],
    fault: Fault,
    valid_mask: u64,
    s: &mut SimScratch,
) -> u64 {
    s.version = s.version.wrapping_add(1);
    if s.version == 0 {
        s.stamp.fill(0);
        s.queued.fill(0);
        s.version = 1;
    }
    let v = s.version;
    let stuck_word = if fault.stuck_value() { !0u64 } else { 0u64 };

    let (inject, faulty_word) = match fault.site() {
        FaultSite::Stem(n) => (n, stuck_word),
        FaultSite::Branch { gate, pin } => {
            let w = eval_override(
                good,
                netlist.kind(gate),
                netlist.fanins(gate),
                pin as usize,
                stuck_word,
            );
            (gate, w)
        }
    };

    let diff = (faulty_word ^ good[inject.index()]) & valid_mask;
    if diff == 0 {
        return 0;
    }
    s.faulty[inject.index()] = faulty_word;
    s.stamp[inject.index()] = v;
    let mut detected = if netlist.is_output(inject) { diff } else { 0 };

    debug_assert!(s.queue.is_empty());
    for &g in netlist.fanouts(inject) {
        if s.queued[g.index()] != v {
            s.queued[g.index()] = v;
            s.queue.push(Reverse((netlist.level(g), g.as_u32())));
        }
    }

    while let Some(Reverse((_, raw))) = s.queue.pop() {
        let node = NodeId::new(raw as usize);
        let kind = netlist.kind(node);
        let val = eval_with(kind, netlist.fanins(node), |f| {
            if s.stamp[f.index()] == v {
                s.faulty[f.index()]
            } else {
                good[f.index()]
            }
        });
        let d = (val ^ good[node.index()]) & valid_mask;
        if d != 0 {
            s.faulty[node.index()] = val;
            s.stamp[node.index()] = v;
            if netlist.is_output(node) {
                detected |= d;
            }
            for &g in netlist.fanouts(node) {
                if s.queued[g.index()] != v {
                    s.queued[g.index()] = v;
                    s.queue.push(Reverse((netlist.level(g), g.as_u32())));
                }
            }
        }
    }
    detected
}

#[cfg(test)]
mod tests {
    use super::*;
    use adi_netlist::bench_format;
    use adi_netlist::fault::Fault;

    const C17: &str = "
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

    fn c17() -> Netlist {
        bench_format::parse(C17, "c17").unwrap()
    }

    /// Brute-force oracle: simulate the faulty circuit explicitly.
    fn oracle_detects(netlist: &Netlist, fault: Fault, pattern: &Pattern) -> bool {
        let good = logic::evaluate(netlist, pattern.as_slice());
        // Faulty evaluation in topo order with explicit overrides.
        let mut faulty = vec![false; netlist.num_nodes()];
        for (i, &pi) in netlist.inputs().iter().enumerate() {
            faulty[pi.index()] = pattern.get(i);
        }
        if let FaultSite::Stem(nf) = fault.site() {
            if netlist.is_input(nf) {
                faulty[nf.index()] = fault.stuck_value();
            }
        }
        for &node in netlist.topo_order() {
            let kind = netlist.kind(node);
            if kind == GateKind::Input {
                continue;
            }
            let vals: Vec<bool> = netlist
                .fanins(node)
                .iter()
                .enumerate()
                .map(|(pin, &f)| {
                    if let FaultSite::Branch { gate, pin: fp } = fault.site() {
                        if gate == node && fp as usize == pin {
                            return fault.stuck_value();
                        }
                    }
                    faulty[f.index()]
                })
                .collect();
            let mut out = kind.eval_bools(&vals);
            if fault.site() == FaultSite::Stem(node) {
                out = fault.stuck_value();
            }
            faulty[node.index()] = out;
        }
        netlist
            .outputs()
            .iter()
            .any(|&o| faulty[o.index()] != good[o.index()])
    }

    #[test]
    fn matches_oracle_on_c17_exhaustive() {
        let n = c17();
        let faults = FaultList::full(&n);
        let patterns = PatternSet::exhaustive(5);
        let sim = FaultSimulator::new(&n, &faults);
        let matrix = sim.no_drop_matrix(&patterns);
        for (id, fault) in faults.iter() {
            for p in 0..patterns.len() {
                let pattern = patterns.get(p);
                assert_eq!(
                    matrix.detected(id, p),
                    oracle_detects(&n, fault, &pattern),
                    "fault {fault} pattern {p}"
                );
            }
        }
    }

    #[test]
    fn c17_exhaustive_full_coverage() {
        // c17 is irredundant: every collapsed fault is detectable.
        let n = c17();
        let faults = FaultList::collapsed(&n);
        let sim = FaultSimulator::new(&n, &faults);
        let drop = sim.with_dropping(&PatternSet::exhaustive(5));
        assert_eq!(drop.num_detected(), faults.len());
        assert!((drop.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_serial() {
        let n = c17();
        let faults = FaultList::full(&n);
        let patterns = PatternSet::random(5, 100, 3);
        let sim = FaultSimulator::new(&n, &faults);
        let serial = sim.no_drop_matrix(&patterns);
        for threads in [2, 3, 8] {
            let par = sim.no_drop_matrix_parallel(&patterns, threads);
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn dropping_matches_no_drop_first_detection() {
        let n = c17();
        let faults = FaultList::collapsed(&n);
        let patterns = PatternSet::random(5, 70, 9);
        let sim = FaultSimulator::new(&n, &faults);
        let matrix = sim.no_drop_matrix(&patterns);
        let drop = sim.with_dropping(&patterns);
        for id in faults.ids() {
            let expect = matrix.detecting_patterns(id).next().map(|p| p as u32);
            assert_eq!(drop.first_detection[id.index()], expect, "fault {id}");
        }
    }

    #[test]
    fn n_detect_counts_match_matrix() {
        let n = c17();
        let faults = FaultList::collapsed(&n);
        let patterns = PatternSet::exhaustive(5);
        let sim = FaultSimulator::new(&n, &faults);
        let matrix = sim.no_drop_matrix(&patterns);
        let nd = sim.n_detect(&patterns, 4);
        for id in faults.ids() {
            let full = matrix.detection_count(id) as u32;
            assert_eq!(nd.counts[id.index()], full.min(4), "fault {id}");
        }
        assert_eq!(nd.num_detected(), faults.len());
    }

    #[test]
    fn detect_pattern_subset() {
        let n = c17();
        let faults = FaultList::collapsed(&n);
        let sim = FaultSimulator::new(&n, &faults);
        let patterns = PatternSet::exhaustive(5);
        let matrix = sim.no_drop_matrix(&patterns);
        let mut scratch = SimScratch::new(&n);
        let active: Vec<FaultId> = faults.ids().collect();
        for p in [0usize, 7, 19, 31] {
            let detected = sim.detect_pattern(&patterns.get(p), &active, &mut scratch);
            let expected: Vec<FaultId> = faults
                .ids()
                .filter(|&id| matrix.detected(id, p))
                .collect();
            assert_eq!(detected, expected, "pattern {p}");
        }
    }

    #[test]
    fn undetectable_fault_reports_nothing() {
        // y = OR(a, NOT(a)) is constant 1: y s-a-1 is undetectable.
        let src = "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = OR(a, na)\n";
        let n = bench_format::parse(src, "taut").unwrap();
        let y = n.find_node("y").unwrap();
        let faults = FaultList::from_faults(vec![Fault::stem_at(y, true)]);
        let sim = FaultSimulator::new(&n, &faults);
        let drop = sim.with_dropping(&PatternSet::exhaustive(1));
        assert_eq!(drop.num_detected(), 0);
    }

    #[test]
    fn branch_fault_differs_from_stem() {
        // a fans out to two gates; a branch s-a-0 on one path must not
        // disturb the other path.
        let src = "INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\ny = BUF(a)\nz = BUF(a)\n";
        let n = bench_format::parse(src, "fan").unwrap();
        let ygate = n.find_node("y").unwrap();
        let branch = Fault::branch_at(ygate, 0, false);
        let faults = FaultList::from_faults(vec![branch]);
        let sim = FaultSimulator::new(&n, &faults);
        let mut scratch = SimScratch::new(&n);
        let p1 = Pattern::new(vec![true]);
        let det = sim.detect_pattern(&p1, &[FaultId::new(0)], &mut scratch);
        assert_eq!(det.len(), 1);
        // With a=0 the branch fault is invisible.
        let p0 = Pattern::new(vec![false]);
        let det = sim.detect_pattern(&p0, &[FaultId::new(0)], &mut scratch);
        assert!(det.is_empty());
    }

    #[test]
    fn drop_outcome_new_detections_sum() {
        let n = c17();
        let faults = FaultList::collapsed(&n);
        let patterns = PatternSet::exhaustive(5);
        let sim = FaultSimulator::new(&n, &faults);
        let drop = sim.with_dropping(&patterns);
        let news = drop.new_detections(patterns.len());
        let total: u32 = news.iter().sum();
        assert_eq!(total as usize, drop.num_detected());
    }
}
