//! Incremental event-driven single-pattern simulation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use adi_netlist::{GateKind, Netlist, NodeId};

use crate::logic;

/// An event-driven simulator holding one current input assignment.
///
/// After construction the simulator tracks a stable set of node values;
/// [`set_input`](Self::set_input) flips one input and propagates only the
/// resulting events in level order. For sparse input changes this is much
/// cheaper than re-simulating the whole circuit, and it provides an
/// independent implementation to cross-check the bit-parallel simulator.
///
/// # Examples
///
/// ```
/// use adi_netlist::bench_format;
/// use adi_sim::EventSim;
///
/// # fn main() -> Result<(), adi_netlist::NetlistError> {
/// let n = bench_format::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and2")?;
/// let mut sim = EventSim::new(&n, &[true, false]);
/// let y = n.find_node("y").unwrap();
/// assert_eq!(sim.value(y), false);
/// sim.set_input(1, true);
/// assert_eq!(sim.value(y), true);
/// assert_eq!(sim.events_processed(), 1); // only y re-evaluated... plus the input
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct EventSim<'a> {
    netlist: &'a Netlist,
    values: Vec<bool>,
    queue: BinaryHeap<Reverse<(u32, u32)>>,
    queued: Vec<bool>,
    events: u64,
}

impl<'a> EventSim<'a> {
    /// Creates a simulator with the given initial input assignment
    /// (`assignment[i]` corresponds to `netlist.inputs()[i]`).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != netlist.num_inputs()`.
    pub fn new(netlist: &'a Netlist, assignment: &[bool]) -> Self {
        let values64 = logic::evaluate(netlist, assignment);
        EventSim {
            netlist,
            values: values64,
            queue: BinaryHeap::new(),
            queued: vec![false; netlist.num_nodes()],
            events: 0,
        }
    }

    /// The current value of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn value(&self, node: NodeId) -> bool {
        self.values[node.index()]
    }

    /// Current values of all primary outputs, in output order.
    pub fn output_values(&self) -> Vec<bool> {
        self.netlist
            .outputs()
            .iter()
            .map(|&o| self.values[o.index()])
            .collect()
    }

    /// Cumulative count of gate re-evaluations performed by event
    /// propagation (statistics / test instrumentation).
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Sets primary input `input_index` (position in `netlist.inputs()`)
    /// to `value`, propagating any resulting events.
    ///
    /// # Panics
    ///
    /// Panics if `input_index` is out of range.
    pub fn set_input(&mut self, input_index: usize, value: bool) {
        let pi = self.netlist.inputs()[input_index];
        if self.values[pi.index()] == value {
            return;
        }
        self.values[pi.index()] = value;
        self.schedule_fanouts(pi);
        self.propagate();
    }

    /// Replaces the whole input assignment, propagating events for every
    /// changed input.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != netlist.num_inputs()`.
    pub fn set_inputs(&mut self, assignment: &[bool]) {
        assert_eq!(assignment.len(), self.netlist.num_inputs());
        for (i, &v) in assignment.iter().enumerate() {
            let pi = self.netlist.inputs()[i];
            if self.values[pi.index()] != v {
                self.values[pi.index()] = v;
                self.schedule_fanouts(pi);
            }
        }
        self.propagate();
    }

    fn schedule_fanouts(&mut self, node: NodeId) {
        for &g in self.netlist.fanouts(node) {
            if !self.queued[g.index()] {
                self.queued[g.index()] = true;
                self.queue
                    .push(Reverse((self.netlist.level(g), g.as_u32())));
            }
        }
    }

    fn propagate(&mut self) {
        while let Some(Reverse((_, raw))) = self.queue.pop() {
            let node = NodeId::new(raw as usize);
            self.queued[node.index()] = false;
            self.events += 1;
            let kind = self.netlist.kind(node);
            debug_assert_ne!(kind, GateKind::Input);
            let word_vals: Vec<u64> = self
                .netlist
                .fanins(node)
                .iter()
                .map(|&f| u64::from(self.values[f.index()]))
                .collect();
            let new = kind.eval_words(&word_vals) & 1 == 1;
            if new != self.values[node.index()] {
                self.values[node.index()] = new;
                self.schedule_fanouts(node);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adi_netlist::bench_format;
    use crate::{logic, PatternSet};

    const CIRC: &str = "
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
OUTPUT(z)
t = NAND(a, b)
u = XOR(t, c)
y = NOT(u)
z = OR(t, a)
";

    #[test]
    fn matches_full_evaluation_on_random_walk() {
        let n = bench_format::parse(CIRC, "c").unwrap();
        let pats = PatternSet::random(3, 100, 11);
        let first = pats.get(0);
        let mut sim = EventSim::new(&n, first.as_slice());
        for p in 1..pats.len() {
            let pattern = pats.get(p);
            sim.set_inputs(pattern.as_slice());
            let reference = logic::evaluate(&n, pattern.as_slice());
            for node in n.node_ids() {
                assert_eq!(sim.value(node), reference[node.index()], "pattern {p}");
            }
        }
    }

    #[test]
    fn no_events_when_nothing_changes() {
        let n = bench_format::parse(CIRC, "c").unwrap();
        let mut sim = EventSim::new(&n, &[false, false, false]);
        let before = sim.events_processed();
        sim.set_input(0, false); // unchanged
        assert_eq!(sim.events_processed(), before);
        sim.set_inputs(&[false, false, false]);
        assert_eq!(sim.events_processed(), before);
    }

    #[test]
    fn event_counts_stay_local() {
        // Flipping `c` must never re-evaluate `z` (not in c's cone).
        let n = bench_format::parse(CIRC, "c").unwrap();
        let mut sim = EventSim::new(&n, &[true, true, false]);
        let z_before = sim.value(n.find_node("z").unwrap());
        let e0 = sim.events_processed();
        sim.set_input(2, true);
        // c feeds only u and y: at most 2 events.
        assert!(sim.events_processed() - e0 <= 2);
        assert_eq!(sim.value(n.find_node("z").unwrap()), z_before);
    }

    #[test]
    fn output_values_in_order() {
        let n = bench_format::parse(CIRC, "c").unwrap();
        let sim = EventSim::new(&n, &[true, true, true]);
        let outs = sim.output_values();
        let y = n.find_node("y").unwrap();
        let z = n.find_node("z").unwrap();
        assert_eq!(outs, vec![sim.value(y), sim.value(z)]);
    }
}
