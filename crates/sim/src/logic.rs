//! Fault-free ("good machine") simulation.

use adi_netlist::{GateKind, Netlist, NodeId};

use crate::PatternSet;

/// Evaluates one node from already-computed fanin values.
#[inline]
pub(crate) fn eval_node(values: &[u64], kind: GateKind, fanins: &[NodeId]) -> u64 {
    match kind {
        GateKind::Input => panic!("inputs are loaded, not evaluated"),
        GateKind::Buf => values[fanins[0].index()],
        GateKind::Not => !values[fanins[0].index()],
        GateKind::And => fanins
            .iter()
            .fold(!0u64, |acc, f| acc & values[f.index()]),
        GateKind::Nand => !fanins
            .iter()
            .fold(!0u64, |acc, f| acc & values[f.index()]),
        GateKind::Or => fanins.iter().fold(0u64, |acc, f| acc | values[f.index()]),
        GateKind::Nor => !fanins.iter().fold(0u64, |acc, f| acc | values[f.index()]),
        GateKind::Xor => fanins.iter().fold(0u64, |acc, f| acc ^ values[f.index()]),
        GateKind::Xnor => !fanins.iter().fold(0u64, |acc, f| acc ^ values[f.index()]),
        GateKind::Const0 => 0,
        GateKind::Const1 => !0,
    }
}

/// Simulates one block of up to 64 patterns.
///
/// `input_words[i]` is the packed word for the `i`-th primary input (in
/// [`Netlist::inputs`] order); `out` receives one word per node.
///
/// # Panics
///
/// Panics if `input_words.len() != netlist.num_inputs()` or
/// `out.len() != netlist.num_nodes()`.
pub fn simulate_block(netlist: &Netlist, input_words: &[u64], out: &mut [u64]) {
    assert_eq!(input_words.len(), netlist.num_inputs());
    assert_eq!(out.len(), netlist.num_nodes());
    for (i, &pi) in netlist.inputs().iter().enumerate() {
        out[pi.index()] = input_words[i];
    }
    for &node in netlist.topo_order() {
        let kind = netlist.kind(node);
        if kind == GateKind::Input {
            continue;
        }
        out[node.index()] = eval_node(out, kind, netlist.fanins(node));
    }
}

/// Evaluates the circuit on a single assignment of the primary inputs.
///
/// Returns one boolean per node. `assignment[i]` corresponds to
/// `netlist.inputs()[i]`.
///
/// # Panics
///
/// Panics if `assignment.len() != netlist.num_inputs()`.
///
/// # Examples
///
/// ```
/// use adi_netlist::bench_format;
/// use adi_sim::logic::evaluate;
///
/// # fn main() -> Result<(), adi_netlist::NetlistError> {
/// let n = bench_format::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n", "nand2")?;
/// let values = evaluate(&n, &[true, true]);
/// let y = n.find_node("y").unwrap();
/// assert_eq!(values[y.index()], false);
/// # Ok(())
/// # }
/// ```
pub fn evaluate(netlist: &Netlist, assignment: &[bool]) -> Vec<bool> {
    let words: Vec<u64> = assignment.iter().map(|&b| u64::from(b)).collect();
    let mut out = vec![0u64; netlist.num_nodes()];
    simulate_block(netlist, &words, &mut out);
    out.into_iter().map(|w| w & 1 == 1).collect()
}

/// Good-machine values for every node under every pattern of a
/// [`PatternSet`], stored block-major so each block's node values are
/// contiguous (the layout the fault simulator wants).
///
/// # Examples
///
/// ```
/// use adi_netlist::bench_format;
/// use adi_sim::{GoodValues, PatternSet};
///
/// # fn main() -> Result<(), adi_netlist::NetlistError> {
/// let n = bench_format::parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "inv")?;
/// let pats = PatternSet::exhaustive(1);
/// let good = GoodValues::compute(&n, &pats);
/// let y = n.find_node("y").unwrap();
/// assert_eq!(good.value(y, 0), true); // pattern 0 has a=0, so y = NOT(a) = 1
/// assert_eq!(good.value(y, 1), false);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GoodValues {
    n_nodes: usize,
    n_blocks: usize,
    n_patterns: usize,
    data: Vec<u64>,
}

impl GoodValues {
    /// Simulates all patterns and stores per-node values.
    pub fn compute(netlist: &Netlist, patterns: &PatternSet) -> Self {
        assert_eq!(
            patterns.num_inputs(),
            netlist.num_inputs(),
            "pattern width does not match circuit input count"
        );
        let n_nodes = netlist.num_nodes();
        let n_blocks = patterns.num_blocks();
        let mut data = vec![0u64; n_nodes * n_blocks];
        let mut input_words = vec![0u64; netlist.num_inputs()];
        for block in 0..n_blocks {
            for (i, w) in input_words.iter_mut().enumerate() {
                *w = patterns.input_word(i, block);
            }
            let slice = &mut data[block * n_nodes..(block + 1) * n_nodes];
            simulate_block(netlist, &input_words, slice);
        }
        GoodValues {
            n_nodes,
            n_blocks,
            n_patterns: patterns.len(),
            data,
        }
    }

    /// Number of pattern blocks.
    pub fn num_blocks(&self) -> usize {
        self.n_blocks
    }

    /// Number of patterns simulated.
    pub fn num_patterns(&self) -> usize {
        self.n_patterns
    }

    /// The packed word of values of `node` for pattern block `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    #[inline]
    pub fn word(&self, node: NodeId, block: usize) -> u64 {
        self.block(block)[node.index()]
    }

    /// All node values for one block, indexed by node id.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    #[inline]
    pub fn block(&self, block: usize) -> &[u64] {
        &self.data[block * self.n_nodes..(block + 1) * self.n_nodes]
    }

    /// The boolean value of `node` under pattern `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range.
    pub fn value(&self, node: NodeId, pattern: usize) -> bool {
        assert!(pattern < self.n_patterns, "pattern index out of range");
        self.word(node, pattern / 64) >> (pattern % 64) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adi_netlist::bench_format;
    use crate::Pattern;

    const MUX: &str = "
INPUT(a)
INPUT(s)
INPUT(b)
OUTPUT(y)
ns = NOT(s)
t0 = AND(a, ns)
t1 = AND(b, s)
y = OR(t0, t1)
";

    #[test]
    fn mux_truth_table() {
        let n = bench_format::parse(MUX, "mux").unwrap();
        let y = n.find_node("y").unwrap();
        // (a, s, b) -> y = s ? b : a
        for a in [false, true] {
            for s in [false, true] {
                for b in [false, true] {
                    let vals = evaluate(&n, &[a, s, b]);
                    let expect = if s { b } else { a };
                    assert_eq!(vals[y.index()], expect, "a={a} s={s} b={b}");
                }
            }
        }
    }

    #[test]
    fn block_sim_matches_scalar() {
        let n = bench_format::parse(MUX, "mux").unwrap();
        let pats = PatternSet::exhaustive(3);
        let good = GoodValues::compute(&n, &pats);
        for p in 0..pats.len() {
            let pattern = pats.get(p);
            let scalar = evaluate(&n, pattern.as_slice());
            for node in n.node_ids() {
                assert_eq!(
                    good.value(node, p),
                    scalar[node.index()],
                    "node {node} pattern {p}"
                );
            }
        }
    }

    #[test]
    fn multi_block_values() {
        let n = bench_format::parse(MUX, "mux").unwrap();
        let pats = PatternSet::random(3, 200, 5);
        let good = GoodValues::compute(&n, &pats);
        assert_eq!(good.num_blocks(), 4);
        assert_eq!(good.num_patterns(), 200);
        // Spot-check the last pattern.
        let last = pats.get(199);
        let scalar = evaluate(&n, last.as_slice());
        for node in n.node_ids() {
            assert_eq!(good.value(node, 199), scalar[node.index()]);
        }
    }

    #[test]
    fn constants_simulate() {
        let n = bench_format::parse("OUTPUT(y)\nk = CONST1()\ny = BUF(k)\n", "c").unwrap();
        let mut set = PatternSet::new(0);
        set.push(&Pattern::new(vec![]));
        let good = GoodValues::compute(&n, &set);
        let y = n.find_node("y").unwrap();
        assert!(good.value(y, 0));
    }

    #[test]
    #[should_panic(expected = "pattern width")]
    fn width_mismatch_panics() {
        let n = bench_format::parse(MUX, "mux").unwrap();
        let pats = PatternSet::exhaustive(2);
        let _ = GoodValues::compute(&n, &pats);
    }
}
