//! Fault-free ("good machine") simulation.
//!
//! Two entry points are offered: [`simulate_block`] walks the netlist's
//! `topo_order()` in node-id space (the convenient layout for scalar
//! tooling), while [`simulate_block_csr`] is the hot path — a single
//! linear sweep over a [`LevelizedCsr`] view whose `kinds`/fanin arrays
//! are contiguous in evaluation order. [`GoodValues::for_circuit`] runs
//! on the CSR path internally and scatters back to node-id layout.

use adi_netlist::{CompiledCircuit, GateKind, LevelizedCsr, Netlist, NodeId};

use crate::word::SimWord;
use crate::PatternSet;

/// Evaluates one node from already-computed fanin values.
#[inline]
pub(crate) fn eval_node(values: &[u64], kind: GateKind, fanins: &[NodeId]) -> u64 {
    match kind {
        GateKind::Input => panic!("inputs are loaded, not evaluated"),
        GateKind::Buf => values[fanins[0].index()],
        GateKind::Not => !values[fanins[0].index()],
        GateKind::And => fanins
            .iter()
            .fold(!0u64, |acc, f| acc & values[f.index()]),
        GateKind::Nand => !fanins
            .iter()
            .fold(!0u64, |acc, f| acc & values[f.index()]),
        GateKind::Or => fanins.iter().fold(0u64, |acc, f| acc | values[f.index()]),
        GateKind::Nor => !fanins.iter().fold(0u64, |acc, f| acc | values[f.index()]),
        GateKind::Xor => fanins.iter().fold(0u64, |acc, f| acc ^ values[f.index()]),
        GateKind::Xnor => !fanins.iter().fold(0u64, |acc, f| acc ^ values[f.index()]),
        GateKind::Const0 => 0,
        GateKind::Const1 => !0,
    }
}

/// Simulates one block of up to 64 patterns.
///
/// `input_words[i]` is the packed word for the `i`-th primary input (in
/// [`Netlist::inputs`] order); `out` receives one word per node.
///
/// # Panics
///
/// Panics if `input_words.len() != netlist.num_inputs()` or
/// `out.len() != netlist.num_nodes()`.
pub fn simulate_block(netlist: &Netlist, input_words: &[u64], out: &mut [u64]) {
    assert_eq!(input_words.len(), netlist.num_inputs());
    assert_eq!(out.len(), netlist.num_nodes());
    for (i, &pi) in netlist.inputs().iter().enumerate() {
        out[pi.index()] = input_words[i];
    }
    for &node in netlist.topo_order() {
        let kind = netlist.kind(node);
        if kind == GateKind::Input {
            continue;
        }
        out[node.index()] = eval_node(out, kind, netlist.fanins(node));
    }
}

/// Evaluates `kind` over [`LevelizedCsr`]-position fanins with values
/// supplied by `value` — the single source of truth for word-parallel
/// gate semantics in position space.
#[inline]
pub(crate) fn eval_with_pos(kind: GateKind, fanins: &[u32], value: impl Fn(u32) -> u64) -> u64 {
    match kind {
        GateKind::Input => panic!("inputs are loaded, not evaluated"),
        GateKind::Buf => value(fanins[0]),
        GateKind::Not => !value(fanins[0]),
        GateKind::And => fanins.iter().fold(!0u64, |acc, &f| acc & value(f)),
        GateKind::Nand => !fanins.iter().fold(!0u64, |acc, &f| acc & value(f)),
        GateKind::Or => fanins.iter().fold(0u64, |acc, &f| acc | value(f)),
        GateKind::Nor => !fanins.iter().fold(0u64, |acc, &f| acc | value(f)),
        GateKind::Xor => fanins.iter().fold(0u64, |acc, &f| acc ^ value(f)),
        GateKind::Xnor => !fanins.iter().fold(0u64, |acc, &f| acc ^ value(f)),
        GateKind::Const0 => 0,
        GateKind::Const1 => !0,
    }
}

/// Simulates one block of up to 64 patterns over a [`LevelizedCsr`] view.
///
/// This is the cache-friendly counterpart of [`simulate_block`]: values
/// are indexed by CSR *position* (topological level order), so the sweep
/// reads the kind and fanin arrays strictly forward and writes `out`
/// strictly forward. `input_words[i]` is the packed word for the `i`-th
/// primary input; `out` receives one word per position.
///
/// # Panics
///
/// Panics if `input_words.len() != view.inputs().len()` or
/// `out.len() != view.num_nodes()`.
pub fn simulate_block_csr(view: &LevelizedCsr, input_words: &[u64], out: &mut [u64]) {
    assert_eq!(input_words.len(), view.inputs().len());
    assert_eq!(out.len(), view.num_nodes());
    for (i, &p) in view.inputs().iter().enumerate() {
        out[p as usize] = input_words[i];
    }
    for p in 0..view.num_nodes() {
        let kind = view.kind_at(p);
        if kind == GateKind::Input {
            continue;
        }
        let v = eval_with_pos(kind, view.fanins_at(p), |f| out[f as usize]);
        out[p] = v;
    }
}

/// Wide counterpart of [`eval_with_pos`]: the same gate semantics over
/// [`SimWord`] lanes. Kept as a separate monomorphized fold (rather
/// than an abstraction both widths share) so the `u64` oracle path
/// stays byte-for-byte what PR 2 shipped.
#[inline]
pub(crate) fn eval_with_pos_w<const N: usize>(
    kind: GateKind,
    fanins: &[u32],
    value: impl Fn(u32) -> SimWord<N>,
) -> SimWord<N> {
    match kind {
        GateKind::Input => panic!("inputs are loaded, not evaluated"),
        GateKind::Buf => value(fanins[0]),
        GateKind::Not => !value(fanins[0]),
        GateKind::And => fanins.iter().fold(SimWord::ONES, |acc, &f| acc & value(f)),
        GateKind::Nand => !fanins.iter().fold(SimWord::ONES, |acc, &f| acc & value(f)),
        GateKind::Or => fanins.iter().fold(SimWord::ZERO, |acc, &f| acc | value(f)),
        GateKind::Nor => !fanins.iter().fold(SimWord::ZERO, |acc, &f| acc | value(f)),
        GateKind::Xor => fanins.iter().fold(SimWord::ZERO, |acc, &f| acc ^ value(f)),
        GateKind::Xnor => !fanins.iter().fold(SimWord::ZERO, |acc, &f| acc ^ value(f)),
        GateKind::Const0 => SimWord::ZERO,
        GateKind::Const1 => SimWord::ONES,
    }
}

/// Simulates one superblock of up to `N * 64` patterns over a
/// [`LevelizedCsr`] view — the wide counterpart of
/// [`simulate_block_csr`].
///
/// # Panics
///
/// Panics if `input_words.len() != view.inputs().len()` or
/// `out.len() != view.num_nodes()`.
pub(crate) fn simulate_superblock_csr<const N: usize>(
    view: &LevelizedCsr,
    input_words: &[SimWord<N>],
    out: &mut [SimWord<N>],
) {
    assert_eq!(input_words.len(), view.inputs().len());
    assert_eq!(out.len(), view.num_nodes());
    for (i, &p) in view.inputs().iter().enumerate() {
        out[p as usize] = input_words[i];
    }
    for p in 0..view.num_nodes() {
        let kind = view.kind_at(p);
        if kind == GateKind::Input {
            continue;
        }
        let v = eval_with_pos_w(kind, view.fanins_at(p), |f| out[f as usize]);
        out[p] = v;
    }
}

/// Fills `input_words` with the packed superblock words of
/// `superblock` — the wide counterpart of [`load_input_words`].
///
/// # Panics
///
/// Panics if `input_words.len() != patterns.num_inputs()`.
pub(crate) fn load_input_words_w<const N: usize>(
    patterns: &PatternSet,
    superblock: usize,
    input_words: &mut [SimWord<N>],
) {
    assert_eq!(input_words.len(), patterns.num_inputs());
    for (i, w) in input_words.iter_mut().enumerate() {
        *w = patterns.input_word_wide(i, superblock);
    }
}

/// Good-machine values in CSR position space, block-major, for every
/// pattern of a [`PatternSet`] — the layout both fault-simulation
/// engines consume directly.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) struct PosGood {
    n_pos: usize,
    data: Vec<u64>,
}

impl PosGood {
    /// Simulates all blocks of `patterns` over `view`.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width does not match the circuit.
    pub(crate) fn compute(view: &LevelizedCsr, patterns: &PatternSet) -> Self {
        assert_eq!(
            patterns.num_inputs(),
            view.inputs().len(),
            "pattern width does not match circuit input count"
        );
        let n_pos = view.num_nodes();
        let n_blocks = patterns.num_blocks();
        let mut data = vec![0u64; n_pos * n_blocks];
        let mut input_words = vec![0u64; view.inputs().len()];
        for block in 0..n_blocks {
            load_input_words(patterns, block, &mut input_words);
            let slice = &mut data[block * n_pos..(block + 1) * n_pos];
            simulate_block_csr(view, &input_words, slice);
        }
        PosGood { n_pos, data }
    }

    /// All position values for one block.
    #[inline]
    pub(crate) fn block(&self, block: usize) -> &[u64] {
        &self.data[block * self.n_pos..(block + 1) * self.n_pos]
    }
}

/// Fills `input_words` with the packed words of `block`.
///
/// # Panics
///
/// Panics if `input_words.len() != patterns.num_inputs()`.
pub(crate) fn load_input_words(patterns: &PatternSet, block: usize, input_words: &mut [u64]) {
    assert_eq!(input_words.len(), patterns.num_inputs());
    for (i, w) in input_words.iter_mut().enumerate() {
        *w = patterns.input_word(i, block);
    }
}

/// Evaluates the circuit on a single assignment of the primary inputs.
///
/// Returns one boolean per node. `assignment[i]` corresponds to
/// `netlist.inputs()[i]`.
///
/// # Panics
///
/// Panics if `assignment.len() != netlist.num_inputs()`.
///
/// # Examples
///
/// ```
/// use adi_netlist::bench_format;
/// use adi_sim::logic::evaluate;
///
/// # fn main() -> Result<(), adi_netlist::NetlistError> {
/// let n = bench_format::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n", "nand2")?;
/// let values = evaluate(&n, &[true, true]);
/// let y = n.find_node("y").unwrap();
/// assert_eq!(values[y.index()], false);
/// # Ok(())
/// # }
/// ```
pub fn evaluate(netlist: &Netlist, assignment: &[bool]) -> Vec<bool> {
    let words: Vec<u64> = assignment.iter().map(|&b| u64::from(b)).collect();
    let mut out = vec![0u64; netlist.num_nodes()];
    simulate_block(netlist, &words, &mut out);
    out.into_iter().map(|w| w & 1 == 1).collect()
}

/// Good-machine values for every node under every pattern of a
/// [`PatternSet`], stored block-major so each block's node values are
/// contiguous (the layout the fault simulator wants).
///
/// # Examples
///
/// ```
/// use adi_netlist::{bench_format, CompiledCircuit};
/// use adi_sim::{GoodValues, PatternSet};
///
/// # fn main() -> Result<(), adi_netlist::NetlistError> {
/// let n = bench_format::parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "inv")?;
/// let circuit = CompiledCircuit::compile(n);
/// let pats = PatternSet::exhaustive(1);
/// let good = GoodValues::for_circuit(&circuit, &pats);
/// let y = circuit.netlist().find_node("y").unwrap();
/// assert_eq!(good.value(y, 0), true); // pattern 0 has a=0, so y = NOT(a) = 1
/// assert_eq!(good.value(y, 1), false);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GoodValues {
    n_nodes: usize,
    n_blocks: usize,
    n_patterns: usize,
    data: Vec<u64>,
}

impl GoodValues {
    /// Simulates all patterns over a [`CompiledCircuit`], reusing its
    /// levelized view (one linear sweep per block, scattered back to
    /// node-id layout). This is the primary entry point; it performs no
    /// per-call setup beyond the value buffers themselves.
    pub fn for_circuit(circuit: &CompiledCircuit, patterns: &PatternSet) -> Self {
        Self::with_view(circuit.netlist(), circuit.view(), patterns)
    }

    /// The shared implementation: one CSR sweep per block over `view`,
    /// scattered back to node-id layout.
    fn with_view(netlist: &Netlist, view: &LevelizedCsr, patterns: &PatternSet) -> Self {
        assert_eq!(
            patterns.num_inputs(),
            netlist.num_inputs(),
            "pattern width does not match circuit input count"
        );
        let n_nodes = netlist.num_nodes();
        let n_blocks = patterns.num_blocks();
        let mut data = vec![0u64; n_nodes * n_blocks];
        let mut input_words = vec![0u64; netlist.num_inputs()];
        let mut pos_buf = vec![0u64; n_nodes];
        for block in 0..n_blocks {
            load_input_words(patterns, block, &mut input_words);
            simulate_block_csr(view, &input_words, &mut pos_buf);
            let slice = &mut data[block * n_nodes..(block + 1) * n_nodes];
            for (p, &w) in pos_buf.iter().enumerate() {
                slice[view.node_at(p).index()] = w;
            }
        }
        GoodValues {
            n_nodes,
            n_blocks,
            n_patterns: patterns.len(),
            data,
        }
    }

    /// Number of pattern blocks.
    pub fn num_blocks(&self) -> usize {
        self.n_blocks
    }

    /// Number of patterns simulated.
    pub fn num_patterns(&self) -> usize {
        self.n_patterns
    }

    /// The packed word of values of `node` for pattern block `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    #[inline]
    pub fn word(&self, node: NodeId, block: usize) -> u64 {
        self.block(block)[node.index()]
    }

    /// All node values for one block, indexed by node id.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    #[inline]
    pub fn block(&self, block: usize) -> &[u64] {
        &self.data[block * self.n_nodes..(block + 1) * self.n_nodes]
    }

    /// The boolean value of `node` under pattern `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range.
    pub fn value(&self, node: NodeId, pattern: usize) -> bool {
        assert!(pattern < self.n_patterns, "pattern index out of range");
        self.word(node, pattern / 64) >> (pattern % 64) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adi_netlist::bench_format;
    use crate::Pattern;

    const MUX: &str = "
INPUT(a)
INPUT(s)
INPUT(b)
OUTPUT(y)
ns = NOT(s)
t0 = AND(a, ns)
t1 = AND(b, s)
y = OR(t0, t1)
";

    #[test]
    fn mux_truth_table() {
        let n = bench_format::parse(MUX, "mux").unwrap();
        let y = n.find_node("y").unwrap();
        // (a, s, b) -> y = s ? b : a
        for a in [false, true] {
            for s in [false, true] {
                for b in [false, true] {
                    let vals = evaluate(&n, &[a, s, b]);
                    let expect = if s { b } else { a };
                    assert_eq!(vals[y.index()], expect, "a={a} s={s} b={b}");
                }
            }
        }
    }

    fn compiled(src: &str, name: &str) -> CompiledCircuit {
        CompiledCircuit::compile(bench_format::parse(src, name).unwrap())
    }

    #[test]
    fn block_sim_matches_scalar() {
        let c = compiled(MUX, "mux");
        let n = c.netlist();
        let pats = PatternSet::exhaustive(3);
        let good = GoodValues::for_circuit(&c, &pats);
        for p in 0..pats.len() {
            let pattern = pats.get(p);
            let scalar = evaluate(n, pattern.as_slice());
            for node in n.node_ids() {
                assert_eq!(
                    good.value(node, p),
                    scalar[node.index()],
                    "node {node} pattern {p}"
                );
            }
        }
    }

    #[test]
    fn multi_block_values() {
        let c = compiled(MUX, "mux");
        let n = c.netlist();
        let pats = PatternSet::random(3, 200, 5);
        let good = GoodValues::for_circuit(&c, &pats);
        assert_eq!(good.num_blocks(), 4);
        assert_eq!(good.num_patterns(), 200);
        // Spot-check the last pattern.
        let last = pats.get(199);
        let scalar = evaluate(n, last.as_slice());
        for node in n.node_ids() {
            assert_eq!(good.value(node, 199), scalar[node.index()]);
        }
    }

    #[test]
    fn csr_sweep_matches_node_space_sim() {
        let n = bench_format::parse(MUX, "mux").unwrap();
        let view = LevelizedCsr::build(&n);
        let pats = PatternSet::random(3, 150, 11);
        let mut input_words = vec![0u64; n.num_inputs()];
        let mut by_id = vec![0u64; n.num_nodes()];
        let mut by_pos = vec![0u64; n.num_nodes()];
        for block in 0..pats.num_blocks() {
            load_input_words(&pats, block, &mut input_words);
            simulate_block(&n, &input_words, &mut by_id);
            simulate_block_csr(&view, &input_words, &mut by_pos);
            for node in n.node_ids() {
                assert_eq!(
                    by_id[node.index()],
                    by_pos[view.position(node)],
                    "node {node} block {block}"
                );
            }
        }
    }

    #[test]
    fn superblock_sweep_lanes_match_per_block_sweeps() {
        let n = bench_format::parse(MUX, "mux").unwrap();
        let view = LevelizedCsr::build(&n);
        let pats = PatternSet::random(3, 300, 11); // 5 blocks: a ragged tail lane
        let mut wide_in = vec![SimWord::<4>::ZERO; n.num_inputs()];
        let mut wide_out = vec![SimWord::<4>::ZERO; n.num_nodes()];
        let mut scalar_in = vec![0u64; n.num_inputs()];
        let mut scalar_out = vec![0u64; n.num_nodes()];
        for sb in 0..pats.num_superblocks(4) {
            load_input_words_w(&pats, sb, &mut wide_in);
            simulate_superblock_csr(&view, &wide_in, &mut wide_out);
            for k in 0..4 {
                let block = sb * 4 + k;
                if block >= pats.num_blocks() {
                    continue;
                }
                load_input_words(&pats, block, &mut scalar_in);
                simulate_block_csr(&view, &scalar_in, &mut scalar_out);
                for p in 0..n.num_nodes() {
                    assert_eq!(wide_out[p].lane(k), scalar_out[p], "pos {p} lane {k}");
                }
            }
        }
    }

    #[test]
    fn pos_good_matches_good_values() {
        let c = compiled(MUX, "mux");
        let view = c.view();
        let pats = PatternSet::random(3, 100, 21);
        let good = GoodValues::for_circuit(&c, &pats);
        let pos = PosGood::compute(view, &pats);
        for block in 0..pats.num_blocks() {
            for node in c.netlist().node_ids() {
                assert_eq!(
                    good.word(node, block),
                    pos.block(block)[view.position(node)]
                );
            }
        }
    }

    #[test]
    fn constants_simulate() {
        let c = compiled("OUTPUT(y)\nk = CONST1()\ny = BUF(k)\n", "c");
        let mut set = PatternSet::new(0);
        set.push(&Pattern::new(vec![]));
        let good = GoodValues::for_circuit(&c, &set);
        let y = c.netlist().find_node("y").unwrap();
        assert!(good.value(y, 0));
    }

    #[test]
    #[should_panic(expected = "pattern width")]
    fn width_mismatch_panics() {
        let c = compiled(MUX, "mux");
        let pats = PatternSet::exhaustive(2);
        let _ = GoodValues::for_circuit(&c, &pats);
    }
}
