//! Batched fault dropping for sequentially generated tests.
//!
//! The ATPG driver generates one test at a time, and after every test it
//! must know which still-active faults the test detects (to drop them
//! and skip them as future targets). The scalar way to do that —
//! [`FaultSimulator::detect_pattern`](crate::FaultSimulator::detect_pattern)
//! per test — pays one good-machine sweep plus one event-driven cone
//! walk *per active fault* per test; with thousands of active faults
//! early in a run, the cone walks dominate end-to-end ATPG time.
//!
//! [`DropSession`] batches the generated tests into wide pattern blocks
//! (`N * 64` lanes for a [`SimWord<N>`] session; the default `N = 1`
//! keeps the classic 64-wide block) and runs the detection through the
//! stem-region engine, while preserving the scalar loop's semantics
//! **exactly**:
//!
//! * [`DropSession::push`] appends a generated test as the next lane of
//!   the pending block and refreshes the block's good-machine words
//!   (one wide CSR sweep — the same cost the scalar loop paid for its
//!   1-wide sweep).
//! * [`DropSession::pending_detections`] answers "which pending tests
//!   detect this fault?" with a single per-fault cone walk over the
//!   pending block. The driver uses it to skip targets a pending test
//!   already covers — the batched equivalent of the scalar loop's
//!   "already dropped" check — so the *same targets* reach PODEM and the
//!   generated test set is bit-identical.
//! * [`DropSession::flush`] runs the stem-region engine once over the
//!   pending block (one sensitization sweep plus one observability walk
//!   per region with an active fault — instead of one walk per active
//!   fault per test) and replays the drop bookkeeping lane by lane:
//!   each fault is credited to the *first* pending test that detects
//!   it, in the order the scalar loop would have reported. With
//!   [`with_threads`](DropSession::with_threads) the flush detection is
//!   split region-parallel across threads (disjoint faults per thread,
//!   merged without locks) — same results, useful when wide blocks make
//!   single flushes heavy.
//!
//! Detection of a fault by a pattern does not depend on which other
//! faults have been dropped, so deferring the bookkeeping to the flush
//! cannot change any detection verdict — only the arithmetic is
//! batched. The differential tests assert drop-for-drop equality with
//! the scalar loop on every suite circuit.

use adi_netlist::fault::{FaultId, FaultList};
use adi_netlist::CompiledCircuit;

use crate::faultsim::{detect_superblock_impl, WideScratchBuf};
use crate::logic;
use crate::stem::{StemRegionEngine, StemScratch};
use crate::word::SimWord;
use crate::Pattern;

/// A wide batched drop-simulation session for sequentially generated
/// tests, bit-identical to the scalar
/// [`detect_pattern`](crate::FaultSimulator::detect_pattern) loop.
///
/// The const parameter `N` is the lane count of the session's
/// [`SimWord`]: the pending block holds up to `N * 64` tests. The
/// default `N = 1` is the classic 64-wide block; the batched ATPG
/// driver instantiates the width its
/// [`TestGenConfig`](../../adi_atpg/struct.TestGenConfig.html) asks for.
///
/// # Examples
///
/// ```
/// use adi_netlist::{bench_format, CompiledCircuit, fault::FaultId};
/// use adi_sim::{DropSession, Pattern};
///
/// # fn main() -> Result<(), adi_netlist::NetlistError> {
/// let n = bench_format::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and2")?;
/// let circuit = CompiledCircuit::compile(n);
/// let faults = circuit.collapsed_faults();
/// let active: Vec<FaultId> = faults.ids().collect();
///
/// let mut session: DropSession = DropSession::for_circuit(&circuit, faults);
/// session.push(&Pattern::new(vec![true, true]));   // lane 0: detects the s-a-0 class
/// session.push(&Pattern::new(vec![false, true]));  // lane 1: detects a/1 and y/1
/// let per_test = session.flush(&active);
/// assert_eq!(per_test.len(), 2);
/// // Every fault is credited to the first lane that detects it.
/// assert!(per_test[0].len() >= 1 && per_test[1].len() >= 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct DropSession<'a, const N: usize = 1> {
    stem: StemRegionEngine<'a>,
    faults: &'a FaultList,
    /// Per-fault scratch for the pending-lane cone walks.
    buf: WideScratchBuf<N>,
    /// Stem-region block scratch; `scratch.good` always holds the good
    /// words of the pending block.
    scratch: StemScratch<N>,
    /// Packed input words of the pending block, one per primary input.
    lane_words: Vec<SimWord<N>>,
    /// Number of pending lanes (tests pushed since the last flush).
    lanes: u32,
    /// Threads the flush detection splits across (region-parallel).
    threads: usize,
    /// Active flags by fault id, populated transiently per flush.
    active_flags: Vec<bool>,
    /// Per-fault detection words of the current flush.
    words: Vec<SimWord<N>>,
    /// Sensitization path marking used by flushes: the engine's
    /// whole-fault-list marking initially, lazily rebuilt for just the
    /// still-active faults as the active set shrinks (the late-ATPG
    /// reverse sweep then skips the retired regions).
    sens_active: Vec<bool>,
    /// Fault-coverage flags of `sens_active` (by fault id): which faults
    /// the current marking is valid for.
    sens_covers: Vec<bool>,
    /// Number of faults covered at the last (re)build, the shrink
    /// reference for the rebuild heuristic.
    sens_covered_count: usize,
}

impl<'a, const N: usize> DropSession<'a, N> {
    /// Creates a session for `faults` of `circuit`, reusing the
    /// compilation's levelized view and FFR decomposition.
    ///
    /// # Panics
    ///
    /// Panics if any fault references a node outside the circuit.
    pub fn for_circuit(circuit: &CompiledCircuit, faults: &'a FaultList) -> Self {
        let stem = StemRegionEngine::for_circuit(circuit, faults);
        let buf = WideScratchBuf::new(circuit.view());
        let scratch = StemScratch::new(circuit.view());
        let sens_active = stem.sens_needed().to_vec();
        DropSession {
            stem,
            faults,
            buf,
            scratch,
            lane_words: vec![SimWord::ZERO; circuit.view().inputs().len()],
            lanes: 0,
            threads: 1,
            active_flags: vec![false; faults.len()],
            words: vec![SimWord::ZERO; faults.len()],
            sens_active,
            sens_covers: vec![true; faults.len()],
            sens_covered_count: faults.len(),
        }
    }

    /// Returns the session with its flush detection split across
    /// `threads` OS threads, region-parallel (builder style). Results
    /// are identical at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "at least one thread required");
        self.threads = threads;
        self
    }

    /// Lane capacity of the pending block (`N * 64`).
    #[inline]
    pub fn capacity(&self) -> usize {
        N * 64
    }

    /// Number of tests pushed since the last flush.
    #[inline]
    pub fn pending(&self) -> usize {
        self.lanes as usize
    }

    /// Returns `true` once [`capacity`](Self::capacity) tests are
    /// pending; the next [`push`](Self::push) requires a
    /// [`flush`](Self::flush) first.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.lanes as usize == N * 64
    }

    #[inline]
    fn lane_mask(&self) -> SimWord<N> {
        SimWord::low_mask(self.lanes as usize)
    }

    /// Appends `pattern` as the next lane of the pending block and
    /// refreshes the block's good-machine words (one wide CSR sweep).
    ///
    /// # Panics
    ///
    /// Panics if the block is full or the pattern width does not match
    /// the circuit.
    pub fn push(&mut self, pattern: &Pattern) {
        assert!(
            (self.lanes as usize) < N * 64,
            "pending block full: flush before pushing"
        );
        let view = self.stem.view();
        assert_eq!(
            pattern.len(),
            view.inputs().len(),
            "pattern width does not match circuit input count"
        );
        let lane = self.lanes as usize;
        for (i, v) in pattern.iter().enumerate() {
            if v {
                self.lane_words[i].set_bit(lane);
            }
        }
        self.lanes += 1;
        logic::simulate_superblock_csr(view, &self.lane_words, &mut self.scratch.good);
    }

    /// The word of pending lanes that detect `fault` (bit `j` set iff
    /// the `j`-th pending test detects it), computed with a single
    /// per-fault cone walk. Zero when no tests are pending.
    ///
    /// The ATPG driver calls this before targeting a fault: a non-zero
    /// word means a pending test already covers it, exactly as the
    /// scalar loop's per-test dropping would have.
    pub fn pending_detections(&mut self, fault: FaultId) -> SimWord<N> {
        if self.lanes == 0 {
            return SimWord::ZERO;
        }
        let mask = self.lane_mask();
        detect_superblock_impl(
            self.stem.view(),
            &self.scratch.good,
            self.faults.fault(fault),
            mask,
            &mut self.buf,
        )
    }

    /// Drains the pending block: runs the stem-region engine once over
    /// it and returns, per pending test in push order, the `active`
    /// faults it newly detects (each fault credited to the first
    /// detecting lane, lists in `active` order) — exactly the sequence
    /// of detection lists the scalar per-test loop would have produced.
    ///
    /// Faults outside `active` are skipped entirely. The session is
    /// empty afterwards.
    pub fn flush(&mut self, active: &[FaultId]) -> Vec<Vec<FaultId>> {
        static SPAN_FLUSH: adi_obs::SpanSite = adi_obs::SpanSite::new("sim.drop_flush");
        let _span = SPAN_FLUSH.enter();
        let lanes = self.lanes as usize;
        let mut per_lane: Vec<Vec<FaultId>> = vec![Vec::new(); lanes];
        if lanes == 0 {
            return per_lane;
        }
        let mask = self.lane_mask();
        self.refresh_sens_marking(active);

        let DropSession {
            stem,
            scratch,
            active_flags,
            words,
            sens_active,
            threads,
            ..
        } = self;
        for &id in active {
            active_flags[id.index()] = true;
        }
        words.fill(SimWord::ZERO);
        let threads = (*threads).min(stem.num_fault_regions());
        if threads > 1 {
            // Work-stealing region-parallel flush: weight-balanced group
            // chunks pulled from a shared cursor read the shared good
            // words of the pending block; the (fault, word) hits are
            // merged serially (every fault lives in exactly one chunk,
            // so order within and across buckets is irrelevant).
            let good: &[SimWord<N>] = &scratch.good;
            let chunks = stem.chunk_group_ranges(threads * 4);
            let cursor = std::sync::atomic::AtomicUsize::new(0);
            let flags: &[bool] = active_flags;
            let marking: &[bool] = sens_active;
            let stem_ref: &StemRegionEngine<'_> = stem;
            let mut buckets: Vec<Vec<(u32, SimWord<N>)>> = Vec::with_capacity(threads);
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for _ in 0..threads {
                    let chunks = &chunks;
                    let cursor = &cursor;
                    handles.push(scope.spawn(move || {
                        let mut out = Vec::new();
                        stem_ref.detect_chunks_shared_good(
                            chunks,
                            cursor,
                            mask,
                            good,
                            marking,
                            Some(flags),
                            &mut out,
                        );
                        out
                    }));
                }
                for h in handles {
                    buckets.push(h.join().expect("flush worker panicked"));
                }
            });
            for bucket in buckets {
                for (fault, word) in bucket {
                    words[fault as usize] = word;
                }
            }
        } else {
            stem.prepare_block_with(scratch, sens_active);
            stem.for_each_detection(mask, scratch, Some(active_flags), |fault, word| {
                words[fault as usize] = word;
            });
        }
        for &id in active {
            active_flags[id.index()] = false;
        }

        for &id in active {
            let w = self.words[id.index()];
            if !w.is_zero() {
                per_lane[w.first_set_bit() as usize].push(id);
            }
        }

        self.lanes = 0;
        self.lane_words.fill(SimWord::ZERO);
        per_lane
    }

    /// Keeps the sensitization path marking valid for `active` and
    /// lazily shrinks it. A rebuild happens when the marking does not
    /// cover some requested fault (correctness — `flush` accepts any
    /// fault set), or when the active set has halved since the marking
    /// was built (profit — the reverse sweep then skips the retired
    /// regions). Between rebuilds the marking is a superset, which only
    /// costs sweep work, never changes a detection word.
    fn refresh_sens_marking(&mut self, active: &[FaultId]) {
        let covered = active.iter().all(|id| self.sens_covers[id.index()]);
        if covered && active.len() * 2 > self.sens_covered_count {
            return;
        }
        self.stem.mark_sens_needed(active, &mut self.sens_active);
        self.sens_covers.fill(false);
        for &id in active {
            self.sens_covers[id.index()] = true;
        }
        self.sens_covered_count = active.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultSimulator, PatternSet};
    use adi_netlist::bench_format;
    use adi_netlist::Netlist;

    const C17: &str = "
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

    fn c17() -> CompiledCircuit {
        let n: Netlist = bench_format::parse(C17, "c17").unwrap();
        CompiledCircuit::compile(n)
    }

    /// The scalar reference: detect_pattern per test with immediate
    /// dropping.
    fn scalar_drop_lists(
        circuit: &CompiledCircuit,
        faults: &FaultList,
        patterns: &PatternSet,
    ) -> Vec<Vec<FaultId>> {
        let sim = FaultSimulator::for_circuit(circuit, faults);
        let mut scratch = crate::faultsim::SimScratch::for_circuit(circuit);
        let mut active: Vec<FaultId> = faults.ids().collect();
        let mut out = Vec::new();
        for p in 0..patterns.len() {
            let detected = sim.detect_pattern(&patterns.get(p), &active, &mut scratch);
            active.retain(|id| !detected.contains(id));
            out.push(detected);
        }
        out
    }

    /// Drives a session over the whole pattern set with flush-when-full,
    /// returning the concatenated per-test drop lists.
    fn session_drop_lists<const N: usize>(
        circuit: &CompiledCircuit,
        faults: &FaultList,
        patterns: &PatternSet,
        threads: usize,
    ) -> Vec<Vec<FaultId>> {
        let mut session =
            DropSession::<N>::for_circuit(circuit, faults).with_threads(threads);
        let mut active: Vec<FaultId> = faults.ids().collect();
        let mut got: Vec<Vec<FaultId>> = Vec::new();
        for p in 0..patterns.len() {
            session.push(&patterns.get(p));
            if session.is_full() {
                let lists = session.flush(&active);
                for detected in &lists {
                    active.retain(|id| !detected.contains(id));
                }
                got.extend(lists);
            }
        }
        got.extend(session.flush(&active));
        got
    }

    #[test]
    fn flush_matches_scalar_loop_exactly() {
        let circuit = c17();
        let faults = circuit.full_faults();
        let patterns = PatternSet::random(5, 150, 42);
        let expected = scalar_drop_lists(&circuit, faults, &patterns);
        assert_eq!(session_drop_lists::<1>(&circuit, faults, &patterns, 1), expected);
    }

    #[test]
    fn wide_and_threaded_sessions_match_scalar_loop() {
        // 150 patterns: the 4-lane session flushes one full 256-lane
        // block never, the 2-lane one once — exercising partial blocks
        // at every width, with and without region-parallel flushes.
        let circuit = c17();
        let faults = circuit.full_faults();
        let patterns = PatternSet::random(5, 150, 42);
        let expected = scalar_drop_lists(&circuit, faults, &patterns);
        assert_eq!(session_drop_lists::<2>(&circuit, faults, &patterns, 1), expected);
        assert_eq!(session_drop_lists::<4>(&circuit, faults, &patterns, 1), expected);
        assert_eq!(session_drop_lists::<8>(&circuit, faults, &patterns, 1), expected);
        assert_eq!(session_drop_lists::<1>(&circuit, faults, &patterns, 4), expected);
        assert_eq!(session_drop_lists::<4>(&circuit, faults, &patterns, 4), expected);
    }

    #[test]
    fn pending_detections_match_scalar_detect_pattern() {
        let circuit = c17();
        let faults = circuit.collapsed_faults();
        let patterns = PatternSet::exhaustive(5);
        let sim = FaultSimulator::for_circuit(&circuit, faults);
        let mut scratch = crate::faultsim::SimScratch::for_circuit(&circuit);
        let all: Vec<FaultId> = faults.ids().collect();

        let mut session: DropSession = DropSession::for_circuit(&circuit, faults);
        for p in 0..8 {
            session.push(&patterns.get(p));
        }
        for &id in &all {
            let word = session.pending_detections(id);
            for p in 0..8 {
                let scalar = sim
                    .detect_pattern(&patterns.get(p), &[id], &mut scratch)
                    .contains(&id);
                assert_eq!(word.bit(p), scalar, "fault {id} lane {p}");
            }
        }
    }

    #[test]
    fn wide_pending_detections_cross_lane_boundaries() {
        // Push past lane 64 of a 2-lane session so pending detections
        // must read the second u64 lane.
        let circuit = c17();
        let faults = circuit.collapsed_faults();
        let patterns = PatternSet::random(5, 100, 17);
        let sim = FaultSimulator::for_circuit(&circuit, faults);
        let mut scratch = crate::faultsim::SimScratch::for_circuit(&circuit);

        let mut session = DropSession::<2>::for_circuit(&circuit, faults);
        for p in 0..100 {
            session.push(&patterns.get(p));
        }
        assert_eq!(session.pending(), 100);
        assert_eq!(session.capacity(), 128);
        for id in faults.ids() {
            let word = session.pending_detections(id);
            for p in [0usize, 63, 64, 65, 99] {
                let scalar = sim
                    .detect_pattern(&patterns.get(p), &[id], &mut scratch)
                    .contains(&id);
                assert_eq!(word.bit(p), scalar, "fault {id} lane {p}");
            }
        }
    }

    #[test]
    fn empty_flush_is_a_noop() {
        let circuit = c17();
        let faults = circuit.collapsed_faults();
        let mut session: DropSession = DropSession::for_circuit(&circuit, faults);
        let active: Vec<FaultId> = faults.ids().collect();
        assert_eq!(session.pending(), 0);
        assert!(session.flush(&active).is_empty());
        assert!(session.pending_detections(active[0]).is_zero());
    }

    #[test]
    fn full_block_boundary() {
        let circuit = c17();
        let faults = circuit.collapsed_faults();
        let patterns = PatternSet::random(5, 64, 7);
        let mut session: DropSession = DropSession::for_circuit(&circuit, faults);
        for p in 0..64 {
            session.push(&patterns.get(p));
        }
        assert!(session.is_full());
        let active: Vec<FaultId> = faults.ids().collect();
        let lists = session.flush(&active);
        assert_eq!(lists.len(), 64);
        assert_eq!(session.pending(), 0);
        assert_eq!(lists, scalar_drop_lists(&circuit, faults, &patterns));
    }

    #[test]
    fn shrinking_active_set_rebuilds_marking_and_stays_exact() {
        // Drive the active set far below half so the lazy sens rebuild
        // fires, then keep flushing: results must stay scalar-identical.
        let circuit = c17();
        let faults = circuit.full_faults();
        let patterns = PatternSet::random(5, 200, 11);
        let expected = scalar_drop_lists(&circuit, faults, &patterns);

        let mut session: DropSession = DropSession::for_circuit(&circuit, faults);
        let mut active: Vec<FaultId> = faults.ids().collect();
        let mut got: Vec<Vec<FaultId>> = Vec::new();
        for p in 0..patterns.len() {
            session.push(&patterns.get(p));
            // Flush after every push: the active set shrinks while
            // blocks stay 1-wide, maximizing rebuild churn.
            let lists = session.flush(&active);
            for detected in &lists {
                active.retain(|id| !detected.contains(id));
            }
            got.extend(lists);
        }
        assert_eq!(got, expected);
        assert!(
            active.len() * 2 < faults.len(),
            "test premise: the active set must shrink below half"
        );
    }

    #[test]
    fn regrowing_active_set_is_still_exact() {
        // `flush` accepts any fault set; after the marking shrank to a
        // small active set, asking about the full list again must
        // trigger a covering rebuild, not read a stale sweep.
        let circuit = c17();
        let faults = circuit.full_faults();
        let patterns = PatternSet::exhaustive(5);
        let all: Vec<FaultId> = faults.ids().collect();
        let few: Vec<FaultId> = faults.ids().take(2).collect();

        let mut session: DropSession = DropSession::for_circuit(&circuit, faults);
        session.push(&patterns.get(3));
        let _ = session.flush(&few); // shrink the marking
        session.push(&patterns.get(3));
        let got = session.flush(&all); // regrow: needs a rebuild

        let sim = FaultSimulator::for_circuit(&circuit, faults);
        let mut scratch = crate::faultsim::SimScratch::for_circuit(&circuit);
        let expected = sim.detect_pattern(&patterns.get(3), &all, &mut scratch);
        assert_eq!(got, vec![expected]);
    }

    #[test]
    #[should_panic(expected = "pattern width")]
    fn width_mismatch_panics() {
        let circuit = c17();
        let faults = circuit.collapsed_faults();
        let mut session: DropSession = DropSession::for_circuit(&circuit, faults);
        session.push(&Pattern::new(vec![true]));
    }
}
