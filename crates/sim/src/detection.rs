//! The fault × pattern detection matrix.

use adi_netlist::fault::FaultId;

/// A dense bitmap recording which patterns detect which faults.
///
/// Row `f` is the paper's `D(f)` (the set of vectors detecting fault `f`);
/// column counts are the paper's `ndet(u)` (the number of faults detected
/// by vector `u`). The matrix is produced by
/// [`FaultSimulator::no_drop_matrix`](crate::FaultSimulator::no_drop_matrix).
///
/// # Examples
///
/// ```
/// use adi_sim::DetectionMatrix;
/// use adi_netlist::fault::FaultId;
///
/// let mut m = DetectionMatrix::new(2, 3);
/// m.set(FaultId::new(0), 1);
/// m.set(FaultId::new(1), 1);
/// m.set(FaultId::new(1), 2);
/// assert_eq!(m.ndet_counts(), vec![0, 2, 1]);
/// assert!(m.detected(FaultId::new(1), 2));
/// assert_eq!(m.detecting_patterns(FaultId::new(0)).collect::<Vec<_>>(), vec![1]);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DetectionMatrix {
    n_faults: usize,
    n_patterns: usize,
    n_blocks: usize,
    /// Fault-major: `data[f * n_blocks + b]`.
    data: Vec<u64>,
}

impl DetectionMatrix {
    /// Creates an all-zero matrix for `n_faults` faults and `n_patterns`
    /// patterns.
    pub fn new(n_faults: usize, n_patterns: usize) -> Self {
        let n_blocks = n_patterns.div_ceil(64);
        DetectionMatrix {
            n_faults,
            n_patterns,
            n_blocks,
            data: vec![0; n_faults * n_blocks],
        }
    }

    /// Number of faults (rows).
    pub fn num_faults(&self) -> usize {
        self.n_faults
    }

    /// Number of patterns (columns).
    pub fn num_patterns(&self) -> usize {
        self.n_patterns
    }

    /// Number of 64-pattern blocks per row.
    pub fn num_blocks(&self) -> usize {
        self.n_blocks
    }

    /// Marks `fault` as detected by `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn set(&mut self, fault: FaultId, pattern: usize) {
        assert!(pattern < self.n_patterns);
        self.data[fault.index() * self.n_blocks + pattern / 64] |= 1u64 << (pattern % 64);
    }

    /// ORs a whole block word into a fault's row (used by the fault
    /// simulator; bits beyond the valid patterns must already be masked).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn or_word(&mut self, fault: FaultId, block: usize, word: u64) {
        assert!(block < self.n_blocks);
        self.data[fault.index() * self.n_blocks + block] |= word;
    }

    /// Returns `true` if `pattern` detects `fault`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn detected(&self, fault: FaultId, pattern: usize) -> bool {
        assert!(pattern < self.n_patterns);
        self.data[fault.index() * self.n_blocks + pattern / 64] >> (pattern % 64) & 1 == 1
    }

    /// The packed detection row of `fault`.
    ///
    /// # Panics
    ///
    /// Panics if `fault` is out of range.
    #[inline]
    pub fn row(&self, fault: FaultId) -> &[u64] {
        &self.data[fault.index() * self.n_blocks..(fault.index() + 1) * self.n_blocks]
    }

    /// Returns `true` if any pattern detects `fault`.
    pub fn detected_any(&self, fault: FaultId) -> bool {
        self.row(fault).iter().any(|&w| w != 0)
    }

    /// Number of patterns detecting `fault` (the cardinality of `D(f)`).
    pub fn detection_count(&self, fault: FaultId) -> usize {
        self.row(fault).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the indices of patterns detecting `fault`, in
    /// increasing order.
    pub fn detecting_patterns(&self, fault: FaultId) -> impl Iterator<Item = usize> + '_ {
        self.row(fault).iter().enumerate().flat_map(|(b, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let t = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(b * 64 + t)
                }
            })
        })
    }

    /// Computes `ndet(u)` for every pattern `u`: the number of faults each
    /// pattern detects.
    pub fn ndet_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.n_patterns];
        for f in 0..self.n_faults {
            for b in 0..self.n_blocks {
                let mut w = self.data[f * self.n_blocks + b];
                while w != 0 {
                    let t = w.trailing_zeros() as usize;
                    w &= w - 1;
                    counts[b * 64 + t] += 1;
                }
            }
        }
        counts
    }

    /// Number of faults detected by at least one pattern.
    pub fn num_detected_faults(&self) -> usize {
        (0..self.n_faults)
            .filter(|&f| self.detected_any(FaultId::new(f)))
            .count()
    }

    /// Fault coverage of the whole pattern set: detected / total.
    ///
    /// Returns 0 for an empty fault list.
    pub fn coverage(&self) -> f64 {
        if self.n_faults == 0 {
            0.0
        } else {
            self.num_detected_faults() as f64 / self.n_faults as f64
        }
    }

    /// Mutable row access for parallel construction: splits the matrix
    /// into per-fault-range chunks.
    pub(crate) fn rows_chunks_mut(
        &mut self,
        faults_per_chunk: usize,
    ) -> impl Iterator<Item = &mut [u64]> + '_ {
        self.data.chunks_mut(faults_per_chunk * self.n_blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_query() {
        let mut m = DetectionMatrix::new(3, 130);
        m.set(FaultId::new(0), 0);
        m.set(FaultId::new(0), 64);
        m.set(FaultId::new(2), 129);
        assert!(m.detected(FaultId::new(0), 0));
        assert!(m.detected(FaultId::new(0), 64));
        assert!(!m.detected(FaultId::new(0), 1));
        assert!(m.detected(FaultId::new(2), 129));
        assert_eq!(m.detection_count(FaultId::new(0)), 2);
        assert_eq!(m.detection_count(FaultId::new(1)), 0);
        assert!(m.detected_any(FaultId::new(2)));
        assert!(!m.detected_any(FaultId::new(1)));
    }

    #[test]
    fn ndet_counts_are_column_sums() {
        let mut m = DetectionMatrix::new(4, 5);
        for f in 0..4 {
            m.set(FaultId::new(f), 2);
        }
        m.set(FaultId::new(1), 4);
        let ndet = m.ndet_counts();
        assert_eq!(ndet, vec![0, 0, 4, 0, 1]);
    }

    #[test]
    fn detecting_patterns_in_order() {
        let mut m = DetectionMatrix::new(1, 200);
        for p in [5usize, 63, 64, 199] {
            m.set(FaultId::new(0), p);
        }
        let got: Vec<usize> = m.detecting_patterns(FaultId::new(0)).collect();
        assert_eq!(got, vec![5, 63, 64, 199]);
    }

    #[test]
    fn coverage_counts_detected_rows() {
        let mut m = DetectionMatrix::new(4, 8);
        m.set(FaultId::new(0), 3);
        m.set(FaultId::new(3), 7);
        assert_eq!(m.num_detected_faults(), 2);
        assert!((m.coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn or_word_sets_bits() {
        let mut m = DetectionMatrix::new(2, 70);
        m.or_word(FaultId::new(1), 1, 0b11);
        assert!(m.detected(FaultId::new(1), 64));
        assert!(m.detected(FaultId::new(1), 65));
        assert_eq!(m.detection_count(FaultId::new(1)), 2);
    }

    #[test]
    fn empty_matrix() {
        let m = DetectionMatrix::new(0, 0);
        assert_eq!(m.num_detected_faults(), 0);
        assert_eq!(m.coverage(), 0.0);
        assert!(m.ndet_counts().is_empty());
    }
}
