//! Incremental 3-valued dual-machine simulation for PODEM.
//!
//! PODEM's inner loop changes exactly one primary input per decision and
//! retracts a handful of decisions per backtrack, yet the classic
//! implementation re-simulates **both** 3-valued machines over the whole
//! netlist after every change. [`DualMachineSim`] replaces that with an
//! event-driven evaluator on the compiled [`LevelizedCsr`] position
//! space:
//!
//! * **Position-indexed value arrays.** Good- and faulty-machine [`T3`]
//!   values live in flat arrays indexed by CSR position, so a
//!   propagation wave touches contiguous memory in evaluation order.
//! * **Level-bucket event frontier.** Fanouts always sit on strictly
//!   higher levels, so draining per-level buckets in ascending order
//!   evaluates every node after all of its fanins — the same heap-free
//!   event queue the stem-region fault simulator uses.
//! * **Fault injection at the site.** [`begin_target`] pins the faulty
//!   machine at the stem position (or re-evaluates the branch gate with
//!   the faulty pin forced) and propagates the injection like any other
//!   event wave; the pin stays in force for every later wave.
//! * **Undo trail.** Every value change is recorded on a trail with
//!   per-decision frame marks; [`retract_frame`] restores exactly the
//!   nodes the retracted decision changed, instead of re-simulating.
//! * **Incrementally maintained search state.** A counter of
//!   fault-effect fanins per gate and a counter of differing primary
//!   outputs are updated on every value change, so the D-frontier
//!   ([`refresh_frontier`]) is assembled from a small candidate set and
//!   [`detected`] is O(1). The X-path check walks only the still-X
//!   region, pruned by the CSR's output-cone reachability masks, and is
//!   cached between decisions: an unchanged state answers in O(1), and
//!   after a change the last positive answer's witness path is
//!   revalidated in O(path) before any fresh walk.
//!
//! The evaluator's contract is *exact equivalence* with a full two-machine
//! resimulation of the current assignment ([`is_consistent`] recomputes
//! that reference state, and the PODEM differential suite asserts
//! bit-identical outcomes end to end).
//!
//! [`begin_target`]: DualMachineSim::begin_target
//! [`retract_frame`]: DualMachineSim::retract_frame
//! [`refresh_frontier`]: DualMachineSim::refresh_frontier
//! [`detected`]: DualMachineSim::detected
//! [`is_consistent`]: DualMachineSim::is_consistent

use adi_netlist::fault::{Fault, FaultSite};
use adi_netlist::{CompiledCircuit, GateKind, LevelizedCsr, NodeId};

use crate::t3::{eval_t3_branch, eval_t3_pos, T3};

/// One restorable value change: the position and the pair it held
/// *before* the change.
#[derive(Clone, Copy, Debug)]
struct Change {
    pos: u32,
    good: T3,
    faulty: T3,
}

/// The active target fault, resolved into position space.
#[derive(Clone, Copy, Debug)]
struct Target {
    /// Stem position, or the branch fault's reading-gate position.
    site_pos: u32,
    /// `Some(pin)` for a branch fault on that pin of the site gate.
    branch_pin: Option<u16>,
    /// The stuck value as a ternary constant.
    stuck: T3,
    /// The good-machine node that must take [`Target::excite_val`] to
    /// excite the fault (the stem itself, or the branch pin's driver).
    excite_pos: u32,
    /// The excitation value (`!stuck`).
    excite_val: bool,
}

/// An incremental good/faulty 3-valued evaluator over one compiled
/// circuit, reusable across any number of target faults.
///
/// The intended driver is `adi_atpg::Podem`'s event engine; the type is
/// public so alternative search strategies (and differential tests) can
/// build on the same substrate.
///
/// # Examples
///
/// ```
/// use adi_netlist::{bench_format, fault::Fault, CompiledCircuit};
/// use adi_sim::t3::T3;
/// use adi_sim::t3event::DualMachineSim;
///
/// # fn main() -> Result<(), adi_netlist::NetlistError> {
/// let n = bench_format::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and2")?;
/// let y = n.find_node("y").unwrap();
/// let circuit = CompiledCircuit::compile(n);
/// let mut sim = DualMachineSim::for_circuit(&circuit);
///
/// sim.begin_target(Fault::stem_at(y, false)); // y stuck-at-0
/// assert!(!sim.detected());
/// sim.assign(0, true); // a = 1
/// sim.assign(1, true); // b = 1: good y = 1, faulty y = 0 -> detected
/// assert!(sim.detected());
/// sim.retract_frame(); // undo b: exactly the changed nodes are restored
/// assert!(!sim.detected());
/// assert!(sim.is_consistent());
/// sim.end_target();
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct DualMachineSim {
    circuit: CompiledCircuit,
    /// Good-machine value per position.
    good: Vec<T3>,
    /// Faulty-machine value per position.
    faulty: Vec<T3>,
    target: Option<Target>,
    /// Undo trail of value changes, oldest first.
    trail: Vec<Change>,
    /// Trail length at the start of each open frame (frame 0 is the
    /// injection frame pushed by [`begin_target`](Self::begin_target)).
    frames: Vec<u32>,
    /// Per position: number of fanin pins whose driver currently carries
    /// a fault effect (good and faulty both binary and different).
    effect_fanins: Vec<u32>,
    /// Number of primary outputs currently showing a fault effect.
    detected_outputs: u32,
    /// Positions that may belong to the D-frontier (superset, deduped by
    /// the `cand_stamp` generation). The list is compacted in place once
    /// it outgrows `cand_limit`: dead entries (no fault-effect fanin) are
    /// dropped and the generation is bumped so they can re-enter later —
    /// any event that can restore a dropped position's membership flows
    /// through [`transition`](Self::transition), which re-pushes it. This
    /// keeps pathological million-decision targets bounded by the *live*
    /// effect region instead of by every position ever touched.
    candidates: Vec<u32>,
    cand_stamp: Vec<u32>,
    cand_version: u32,
    /// Compaction trigger: compact when `candidates` reaches this length
    /// (floor [`CAND_COMPACT_FLOOR`], else twice the last live count).
    cand_limit: usize,
    /// Mid-target compactions performed (diagnostics).
    cand_compactions: u64,
    /// Event-wave state: per-level buckets plus a queued stamp.
    buckets: Vec<Vec<u32>>,
    queued: Vec<u32>,
    qversion: u32,
    wave_lo: usize,
    wave_hi: usize,
    /// Monotone state counter bumped on every value/target change, so
    /// frontier refreshes can be skipped when nothing moved.
    state_version: u64,
    /// `state_version` the current frontier snapshot was computed at.
    frontier_version: u64,
    /// Current D-frontier, refreshed on demand.
    frontier_pos: Vec<u32>,
    frontier_ids: Vec<NodeId>,
    /// X-path DFS scratch.
    xvisited: Vec<u32>,
    xfrontier: Vec<u32>,
    xversion: u32,
    xstack: Vec<u64>,
    /// DFS predecessor per position (stamped by `xvisited`), so a
    /// successful walk can record its witness path.
    xparent: Vec<u32>,
    /// Witness of the last positive answer: a frontier gate followed by
    /// still-X positions ending at a primary output. Revalidated in
    /// O(path) before any fresh DFS.
    xwitness: Vec<u32>,
    /// `state_version` the cached X-path answer was computed at.
    xpath_version: u64,
    /// The cached answer itself.
    xpath_cached: bool,
    /// X-path queries answered (cache hits included).
    xpath_queries: u64,
    /// X-path queries that needed a full X-region DFS.
    xpath_walks: u64,
    /// Node evaluations performed by event waves.
    events: u64,
    /// Node value changes applied (trail pushes).
    updates: u64,
}

#[inline]
fn is_effect(good: T3, faulty: T3) -> bool {
    good.is_binary() && faulty.is_binary() && good != faulty
}

/// Minimum candidate-list length before a compaction is considered:
/// below this, scanning the list is cheaper than maintaining it.
const CAND_COMPACT_FLOOR: usize = 128;

impl DualMachineSim {
    /// Builds the evaluator over `circuit` in its quiescent baseline
    /// state: all primary inputs X, no fault injected, both machines
    /// settled (constants propagated).
    pub fn for_circuit(circuit: &CompiledCircuit) -> Self {
        let view = circuit.view();
        let n = view.num_nodes();
        let mut good = vec![T3::X; n];
        for p in 0..n {
            let kind = view.kind_at(p);
            if kind != GateKind::Input {
                let v = eval_t3_pos(kind, view.fanins_at(p), |f| good[f as usize]);
                good[p] = v;
            }
        }
        let faulty = good.clone();
        DualMachineSim {
            circuit: circuit.clone(),
            good,
            faulty,
            target: None,
            trail: Vec::new(),
            frames: Vec::new(),
            effect_fanins: vec![0; n],
            detected_outputs: 0,
            candidates: Vec::new(),
            cand_stamp: vec![0; n],
            cand_version: 0,
            cand_limit: CAND_COMPACT_FLOOR,
            cand_compactions: 0,
            buckets: vec![Vec::new(); view.num_levels()],
            queued: vec![0; n],
            qversion: 0,
            wave_lo: usize::MAX,
            wave_hi: 0,
            state_version: 0,
            frontier_version: u64::MAX,
            frontier_pos: Vec::new(),
            frontier_ids: Vec::new(),
            xvisited: vec![0; n],
            xfrontier: vec![0; n],
            xversion: 0,
            xstack: Vec::new(),
            xparent: vec![0; n],
            xwitness: Vec::new(),
            xpath_version: u64::MAX,
            xpath_cached: false,
            xpath_queries: 0,
            xpath_walks: 0,
            events: 0,
            updates: 0,
        }
    }

    /// The compiled circuit this evaluator runs on.
    #[inline]
    pub fn circuit(&self) -> &CompiledCircuit {
        &self.circuit
    }

    /// Returns `true` while a target fault is injected.
    #[inline]
    pub fn target_active(&self) -> bool {
        self.target.is_some()
    }

    /// Injects `fault` and propagates the injection, opening the
    /// target's base frame. All primary inputs must currently be X
    /// (i.e. the previous target, if any, was ended).
    ///
    /// # Panics
    ///
    /// Panics if a target is already active or the fault references a
    /// node outside the circuit.
    pub fn begin_target(&mut self, fault: Fault) {
        assert!(self.target.is_none(), "previous target not ended");
        let circuit = self.circuit.clone();
        let view = circuit.view();
        assert!(
            fault.effect_node().index() < view.num_nodes(),
            "fault {fault} outside netlist"
        );
        let stuck = T3::from_bool(fault.stuck_value());
        let target = match fault.site() {
            FaultSite::Stem(n) => {
                let p = view.position(n) as u32;
                Target {
                    site_pos: p,
                    branch_pin: None,
                    stuck,
                    excite_pos: p,
                    excite_val: !fault.stuck_value(),
                }
            }
            FaultSite::Branch { gate, pin } => {
                let gp = view.position(gate);
                Target {
                    site_pos: gp as u32,
                    branch_pin: Some(u16::from(pin)),
                    stuck,
                    excite_pos: view.fanins_at(gp)[pin as usize],
                    excite_val: !fault.stuck_value(),
                }
            }
        };
        self.target = Some(target);
        self.state_version += 1;
        self.bump_cand_generation();
        self.candidates.clear();
        self.cand_limit = CAND_COMPACT_FLOOR;
        self.frames.push(self.trail.len() as u32);

        let p = target.site_pos as usize;
        let (g, f) = self.eval_pair(view, p);
        self.start_wave();
        if self.apply(view, p, g, f) {
            self.schedule_fanouts(view, p);
            self.run_wave(view);
        }
    }

    /// Retracts every remaining frame (decisions and injection alike),
    /// returning the evaluator to its quiescent baseline, and clears the
    /// target.
    ///
    /// # Panics
    ///
    /// Panics if no target is active.
    pub fn end_target(&mut self) {
        assert!(self.target.is_some(), "no active target");
        let circuit = self.circuit.clone();
        let view = circuit.view();
        while let Some(mark) = self.frames.pop() {
            while self.trail.len() > mark as usize {
                self.retract_one(view);
            }
        }
        self.target = None;
        self.state_version += 1;
        debug_assert_eq!(self.detected_outputs, 0, "baseline shows a detection");
    }

    /// Assigns primary input `pi` (index into the circuit's input list)
    /// and propagates the change as one event wave, opening a new frame.
    ///
    /// # Panics
    ///
    /// Panics if no target is active or `pi` is out of range.
    pub fn assign(&mut self, pi: usize, value: bool) {
        let target = self.target.expect("no active target");
        let circuit = self.circuit.clone();
        let view = circuit.view();
        let p = view.inputs()[pi] as usize;
        self.frames.push(self.trail.len() as u32);
        let new_good = T3::from_bool(value);
        // A stem fault on this very input keeps the faulty machine
        // pinned at the stuck value.
        let new_faulty = if target.site_pos as usize == p && target.branch_pin.is_none() {
            target.stuck
        } else {
            new_good
        };
        self.start_wave();
        if self.apply(view, p, new_good, new_faulty) {
            self.schedule_fanouts(view, p);
            self.run_wave(view);
        }
    }

    /// Undoes the most recent open frame (one [`assign`](Self::assign)),
    /// restoring exactly the nodes that frame changed.
    ///
    /// # Panics
    ///
    /// Panics if only the injection frame remains (use
    /// [`end_target`](Self::end_target) for that).
    pub fn retract_frame(&mut self) {
        assert!(self.frames.len() > 1, "no decision frame to retract");
        let circuit = self.circuit.clone();
        let view = circuit.view();
        let mark = self.frames.pop().expect("frame present") as usize;
        while self.trail.len() > mark {
            self.retract_one(view);
        }
    }

    /// O(1): does some primary output currently show a binary
    /// good/faulty discrepancy?
    #[inline]
    pub fn detected(&self) -> bool {
        self.detected_outputs > 0
    }

    /// The good-machine value at CSR `position`.
    #[inline]
    pub fn good_at(&self, position: usize) -> T3 {
        self.good[position]
    }

    /// The faulty-machine value at CSR `position`.
    #[inline]
    pub fn faulty_at(&self, position: usize) -> T3 {
        self.faulty[position]
    }

    /// The good-machine value of `node`.
    #[inline]
    pub fn good_of(&self, node: NodeId) -> T3 {
        self.good[self.circuit.view().position(node)]
    }

    /// The excitation obligation of the active target: the CSR position
    /// whose good value must become the returned boolean for the fault
    /// to be excited.
    ///
    /// # Panics
    ///
    /// Panics if no target is active.
    #[inline]
    pub fn excite_site(&self) -> (usize, bool) {
        let t = self.target.expect("no active target");
        (t.excite_pos as usize, t.excite_val)
    }

    /// Recomputes the current D-frontier from the maintained candidate
    /// set: gates whose output is still X in some machine while at least
    /// one fanin carries a fault effect (plus the branch fault's reading
    /// gate while the branch line carries D). Results are readable via
    /// [`frontier_ids`](Self::frontier_ids) until the next state change.
    pub fn refresh_frontier(&mut self) {
        if self.frontier_version == self.state_version {
            return; // nothing changed since the last refresh
        }
        self.frontier_version = self.state_version;
        let circuit = self.circuit.clone();
        let view = circuit.view();
        self.frontier_pos.clear();
        self.frontier_ids.clear();
        for i in 0..self.candidates.len() {
            let p = self.candidates[i] as usize;
            if self.is_member(view, p) {
                self.frontier_pos.push(p as u32);
            }
        }
        // The branch gate enters through excitation of its driver, which
        // the candidate bookkeeping (keyed on fault *effects*) does not
        // see; check it explicitly.
        if let Some(t) = self.target {
            if t.branch_pin.is_some() {
                let gp = t.site_pos as usize;
                if self.is_member(view, gp) && !self.frontier_pos.contains(&t.site_pos) {
                    self.frontier_pos.push(t.site_pos);
                }
            }
        }
        self.frontier_ids
            .extend(self.frontier_pos.iter().map(|&p| view.node_at(p as usize)));
        self.frontier_ids.sort_unstable_by_key(|n| n.index());
    }

    /// The D-frontier as of the last
    /// [`refresh_frontier`](Self::refresh_frontier), in ascending node-id
    /// order (the order the full-resim scan produces, so SCOAP ties break
    /// identically).
    #[inline]
    pub fn frontier_ids(&self) -> &[NodeId] {
        &self.frontier_ids
    }

    /// True if some gate of the current D-frontier (refreshed on entry
    /// if stale) reaches a primary output through nodes that are still X
    /// in at least one machine. The walk is restricted to the still-X region and pruned
    /// by the CSR's output-cone reachability masks (a fanout that
    /// structurally reaches no output is never entered).
    ///
    /// The answer is cached between decisions. An unchanged
    /// `state_version` (no value moved since the last query — the same
    /// invalidation the D-frontier snapshot uses, driven by the undo
    /// trail) answers in O(1). After a state change, a positive answer's
    /// *witness path* is revalidated in O(path): if its frontier gate is
    /// still a D-frontier member and every later node is still X, the
    /// path still exists and the full X-region DFS is skipped.
    pub fn x_path_exists(&mut self) -> bool {
        self.xpath_queries += 1;
        if self.xpath_version == self.state_version {
            return self.xpath_cached;
        }
        self.refresh_frontier(); // no-op when already current
        let circuit = self.circuit.clone();
        let view = circuit.view();
        let answer = if self.witness_still_valid(view) {
            true
        } else {
            self.xpath_walks += 1;
            self.walk_x_region(view)
        };
        self.xpath_version = self.state_version;
        self.xpath_cached = answer;
        answer
    }

    /// O(path) recheck of the last recorded witness under the current
    /// state: the path's frontier gate must still be a member and every
    /// downstream node still X in some machine. Sound either way — a
    /// failed check only means the DFS runs again.
    fn witness_still_valid(&self, view: &LevelizedCsr) -> bool {
        let Some((&root, rest)) = self.xwitness.split_first() else {
            return false;
        };
        if !self.is_member(view, root as usize) {
            return false;
        }
        rest.iter().all(|&p| {
            let p = p as usize;
            self.good[p] == T3::X || self.faulty[p] == T3::X
        })
    }

    /// The full X-region DFS from the current D-frontier, recording the
    /// witness path on success (cleared on failure).
    fn walk_x_region(&mut self, view: &LevelizedCsr) -> bool {
        self.xwitness.clear();
        self.xversion = self.xversion.wrapping_add(1);
        if self.xversion == 0 {
            self.xvisited.fill(0);
            self.xfrontier.fill(0);
            self.xversion = 1;
        }
        let v = self.xversion;
        self.xstack.clear();
        for &p in &self.frontier_pos {
            self.xfrontier[p as usize] = v;
            self.xstack.push((u64::from(u32::MAX) << 32) | u64::from(p));
        }
        while let Some(packed) = self.xstack.pop() {
            let p = (packed & u64::from(u32::MAX)) as usize;
            if self.xvisited[p] == v {
                continue;
            }
            self.xvisited[p] = v;
            self.xparent[p] = (packed >> 32) as u32;
            let unknown = self.good[p] == T3::X || self.faulty[p] == T3::X;
            if !unknown && self.xfrontier[p] != v {
                continue;
            }
            if view.is_output_at(p) {
                // Reconstruct frontier-gate-first witness via parents.
                let mut q = p as u32;
                while q != u32::MAX {
                    self.xwitness.push(q);
                    q = self.xparent[q as usize];
                }
                self.xwitness.reverse();
                return true;
            }
            let parent = (p as u64) << 32;
            for &g in view.fanouts_at(p) {
                if view.reaches_output(g as usize) {
                    self.xstack.push(parent | u64::from(g));
                }
            }
        }
        false
    }

    /// Diagnostics: cumulative `(queries, walks)` for the X-path check —
    /// total calls versus calls that needed a full X-region DFS (the
    /// rest were answered by the cache or a witness revalidation).
    #[inline]
    pub fn xpath_counters(&self) -> (u64, u64) {
        (self.xpath_queries, self.xpath_walks)
    }

    /// Cumulative `(events, updates)` counters: node evaluations
    /// performed by event waves and node value changes applied.
    #[inline]
    pub fn counters(&self) -> (u64, u64) {
        (self.events, self.updates)
    }

    /// Diagnostics: current length of the D-frontier candidate list.
    /// Bounded within a constant factor of the live effect region by
    /// mid-target compaction, independent of how many decisions the
    /// target has accumulated.
    #[inline]
    pub fn frontier_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Diagnostics: cumulative mid-target candidate compactions.
    #[inline]
    pub fn frontier_compactions(&self) -> u64 {
        self.cand_compactions
    }

    /// Differential-oracle hook: recomputes both machines (and every
    /// derived counter) from scratch for the current assignment and
    /// target, and compares against the incremental state. Intended for
    /// tests; O(circuit).
    pub fn is_consistent(&self) -> bool {
        let view = self.circuit.view();
        let n = view.num_nodes();
        let mut good = vec![T3::X; n];
        let mut faulty = vec![T3::X; n];
        for &p in view.inputs() {
            good[p as usize] = self.good[p as usize];
            faulty[p as usize] = self.good[p as usize];
        }
        for p in 0..n {
            let kind = view.kind_at(p);
            if kind != GateKind::Input {
                good[p] = eval_t3_pos(kind, view.fanins_at(p), |f| good[f as usize]);
            }
            faulty[p] = match self.target {
                Some(t) if t.site_pos as usize == p => match t.branch_pin {
                    None => t.stuck,
                    Some(pin) => eval_t3_branch(
                        kind,
                        view.fanins_at(p),
                        pin as usize,
                        t.stuck,
                        |f| faulty[f as usize],
                    ),
                },
                _ => {
                    if kind == GateKind::Input {
                        faulty[p]
                    } else {
                        eval_t3_pos(kind, view.fanins_at(p), |f| faulty[f as usize])
                    }
                }
            };
        }
        if good != self.good || faulty != self.faulty {
            return false;
        }
        let mut effect_fanins = vec![0u32; n];
        let mut detected_outputs = 0u32;
        for p in 0..n {
            if is_effect(good[p], faulty[p]) {
                for &g in view.fanouts_at(p) {
                    effect_fanins[g as usize] += 1;
                }
                if view.is_output_at(p) {
                    detected_outputs += 1;
                }
            }
        }
        effect_fanins == self.effect_fanins && detected_outputs == self.detected_outputs
    }

    /// D-frontier membership of position `p` under the current state.
    #[inline]
    fn is_member(&self, view: &LevelizedCsr, p: usize) -> bool {
        let out_unknown = self.good[p] == T3::X || self.faulty[p] == T3::X;
        if !out_unknown || view.kind_at(p) == GateKind::Input {
            return false;
        }
        if self.effect_fanins[p] > 0 {
            return true;
        }
        match self.target {
            Some(t) if t.branch_pin.is_some() && t.site_pos as usize == p => {
                self.good[t.excite_pos as usize] == T3::from_bool(t.excite_val)
            }
            _ => false,
        }
    }

    /// Evaluates the pair a node *should* hold given current fanin
    /// values and the active injection.
    fn eval_pair(&self, view: &LevelizedCsr, p: usize) -> (T3, T3) {
        let kind = view.kind_at(p);
        let fanins = view.fanins_at(p);
        let good = if kind == GateKind::Input {
            self.good[p]
        } else {
            eval_t3_pos(kind, fanins, |f| self.good[f as usize])
        };
        let faulty = match self.target {
            Some(t) if t.site_pos as usize == p => match t.branch_pin {
                None => t.stuck,
                Some(pin) => eval_t3_branch(kind, fanins, pin as usize, t.stuck, |f| {
                    self.faulty[f as usize]
                }),
            },
            _ => {
                if kind == GateKind::Input {
                    self.faulty[p]
                } else {
                    eval_t3_pos(kind, fanins, |f| self.faulty[f as usize])
                }
            }
        };
        (good, faulty)
    }

    /// Records and applies a value change; returns `false` if the pair
    /// is unchanged. Keeps every derived counter in sync.
    fn apply(&mut self, view: &LevelizedCsr, p: usize, new_good: T3, new_faulty: T3) -> bool {
        let (old_good, old_faulty) = (self.good[p], self.faulty[p]);
        if (old_good, old_faulty) == (new_good, new_faulty) {
            return false;
        }
        self.trail.push(Change {
            pos: p as u32,
            good: old_good,
            faulty: old_faulty,
        });
        self.updates += 1;
        self.state_version += 1;
        self.transition(view, p, is_effect(old_good, old_faulty), is_effect(new_good, new_faulty));
        self.good[p] = new_good;
        self.faulty[p] = new_faulty;
        true
    }

    /// Restores the most recent trail entry.
    fn retract_one(&mut self, view: &LevelizedCsr) {
        let c = self.trail.pop().expect("trail entry present");
        let p = c.pos as usize;
        self.state_version += 1;
        self.transition(
            view,
            p,
            is_effect(self.good[p], self.faulty[p]),
            is_effect(c.good, c.faulty),
        );
        self.good[p] = c.good;
        self.faulty[p] = c.faulty;
    }

    /// Derived-state bookkeeping for a value change at `p` whose effect
    /// status moves `was` → `now` (shared by apply and retract).
    fn transition(&mut self, view: &LevelizedCsr, p: usize, was: bool, now: bool) {
        if was != now {
            for &g in view.fanouts_at(p) {
                let count = &mut self.effect_fanins[g as usize];
                if now {
                    *count += 1;
                } else {
                    *count -= 1;
                }
                self.push_candidate(g);
            }
            if view.is_output_at(p) {
                if now {
                    self.detected_outputs += 1;
                } else {
                    self.detected_outputs -= 1;
                }
            }
        }
        // The node's own membership can only matter while it has an
        // effect fanin (the branch gate is checked separately).
        if self.effect_fanins[p] > 0 {
            self.push_candidate(p as u32);
        }
    }

    #[inline]
    fn push_candidate(&mut self, p: u32) {
        if self.cand_stamp[p as usize] != self.cand_version {
            self.cand_stamp[p as usize] = self.cand_version;
            self.candidates.push(p);
            if self.candidates.len() >= self.cand_limit {
                self.compact_candidates();
            }
        }
    }

    /// Can `p` (re)enter the D-frontier without a further
    /// [`transition`](Self::transition) re-pushing it? Only while a
    /// fanin still carries a fault effect (or `p` is the branch fault's
    /// reading gate, whose membership keys on its driver's good value).
    /// Everything else may be dropped: restoring its membership requires
    /// an effect transition on a fanin, and that re-pushes it.
    #[inline]
    fn candidate_live(&self, p: u32) -> bool {
        self.effect_fanins[p as usize] > 0
            || matches!(self.target, Some(t) if t.branch_pin.is_some() && t.site_pos == p)
    }

    /// Generation-stamped compaction: bump the generation, restamp and
    /// retain the live candidates in place, and drop the rest (their
    /// stale stamps let them re-enter through `push_candidate`). The
    /// next trigger point is twice the surviving count, so the list
    /// stays within a constant factor of the live effect region.
    fn compact_candidates(&mut self) {
        self.bump_cand_generation();
        let mut keep = 0;
        for i in 0..self.candidates.len() {
            let p = self.candidates[i];
            if self.candidate_live(p) {
                self.cand_stamp[p as usize] = self.cand_version;
                self.candidates[keep] = p;
                keep += 1;
            }
        }
        self.candidates.truncate(keep);
        self.cand_limit = (2 * keep).max(CAND_COMPACT_FLOOR);
        self.cand_compactions += 1;
    }

    /// Starts a fresh candidate generation (with the usual wraparound
    /// reset of the stamp array).
    fn bump_cand_generation(&mut self) {
        self.cand_version = self.cand_version.wrapping_add(1);
        if self.cand_version == 0 {
            self.cand_stamp.fill(0);
            self.cand_version = 1;
        }
    }

    fn start_wave(&mut self) {
        self.qversion = self.qversion.wrapping_add(1);
        if self.qversion == 0 {
            self.queued.fill(0);
            self.qversion = 1;
        }
        self.wave_lo = usize::MAX;
        self.wave_hi = 0;
    }

    fn schedule_fanouts(&mut self, view: &LevelizedCsr, p: usize) {
        for &g in view.fanouts_at(p) {
            if self.queued[g as usize] != self.qversion {
                self.queued[g as usize] = self.qversion;
                let lvl = view.level_at(g as usize) as usize;
                self.buckets[lvl].push(g);
                self.wave_lo = self.wave_lo.min(lvl);
                self.wave_hi = self.wave_hi.max(lvl);
            }
        }
    }

    /// Drains the level buckets in ascending order, evaluating each
    /// scheduled node once and rippling further changes forward.
    fn run_wave(&mut self, view: &LevelizedCsr) {
        if self.wave_lo == usize::MAX {
            return;
        }
        let mut lvl = self.wave_lo;
        while lvl <= self.wave_hi {
            let mut bucket = std::mem::take(&mut self.buckets[lvl]);
            for &p in &bucket {
                let p = p as usize;
                self.events += 1;
                let (g, f) = self.eval_pair(view, p);
                if self.apply(view, p, g, f) {
                    self.schedule_fanouts(view, p);
                }
            }
            bucket.clear();
            self.buckets[lvl] = bucket;
            lvl += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adi_netlist::bench_format;
    use adi_netlist::Netlist;

    const C17: &str = "
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

    fn compile(src: &str, name: &str) -> CompiledCircuit {
        CompiledCircuit::compile(bench_format::parse(src, name).unwrap())
    }

    /// The reference D-frontier by the full-resim definition.
    fn reference_frontier(sim: &DualMachineSim, fault: Fault) -> Vec<NodeId> {
        let circuit = sim.circuit().clone();
        let nl: &Netlist = circuit.netlist();
        let view = circuit.view();
        let branch_gate = match fault.site() {
            FaultSite::Branch { gate, pin } => {
                let driver = nl.fanins(gate)[pin as usize];
                let needed = T3::from_bool(!fault.stuck_value());
                (sim.good_of(driver) == needed).then_some(gate)
            }
            FaultSite::Stem(_) => None,
        };
        nl.node_ids()
            .filter(|&n| {
                let p = view.position(n);
                let out_unknown = sim.good_at(p) == T3::X || sim.faulty_at(p) == T3::X;
                if !out_unknown || nl.kind(n) == GateKind::Input {
                    return false;
                }
                if branch_gate == Some(n) {
                    return true;
                }
                nl.fanins(n).iter().any(|&f| {
                    let fp = view.position(f);
                    is_effect(sim.good_at(fp), sim.faulty_at(fp))
                })
            })
            .collect()
    }

    /// The reference X-path answer: a fresh DFS from the reference
    /// frontier through nodes still X in some machine.
    fn reference_x_path(sim: &DualMachineSim, fault: Fault) -> bool {
        let circuit = sim.circuit().clone();
        let view = circuit.view();
        let mut stack: Vec<usize> = reference_frontier(sim, fault)
            .into_iter()
            .map(|n| view.position(n))
            .collect();
        let roots: Vec<usize> = stack.clone();
        let mut seen = vec![false; view.num_nodes()];
        while let Some(p) = stack.pop() {
            if std::mem::replace(&mut seen[p], true) {
                continue;
            }
            let unknown = sim.good_at(p) == T3::X || sim.faulty_at(p) == T3::X;
            if !unknown && !roots.contains(&p) {
                continue;
            }
            if view.is_output_at(p) {
                return true;
            }
            stack.extend(view.fanouts_at(p).iter().map(|&g| g as usize));
        }
        false
    }

    /// Drives every assignment prefix of an exhaustive walk and checks
    /// consistency, the frontier, and detection against the reference.
    fn exhaustive_walk(src: &str, name: &str) {
        let circuit = compile(src, name);
        let n_inputs = circuit.netlist().num_inputs();
        let faults = adi_netlist::fault::FaultList::full(circuit.netlist());
        let mut sim = DualMachineSim::for_circuit(&circuit);
        for (_, fault) in faults.iter() {
            sim.begin_target(fault);
            assert!(sim.is_consistent(), "{name}: after injection of {fault}");
            for value_bits in 0..(1u32 << n_inputs) {
                for pi in 0..n_inputs {
                    sim.assign(pi, value_bits >> pi & 1 == 1);
                    assert!(sim.is_consistent(), "{name}: {fault} bits={value_bits} pi={pi}");
                    sim.refresh_frontier();
                    assert_eq!(
                        sim.frontier_ids(),
                        reference_frontier(&sim, fault),
                        "{name}: frontier for {fault} bits={value_bits} pi={pi}"
                    );
                    assert_eq!(
                        sim.x_path_exists(),
                        reference_x_path(&sim, fault),
                        "{name}: x-path for {fault} bits={value_bits} pi={pi}"
                    );
                }
                for _ in 0..n_inputs {
                    sim.retract_frame();
                }
                assert!(sim.is_consistent(), "{name}: {fault} after retracts");
            }
            sim.end_target();
        }
    }

    #[test]
    fn exhaustive_walk_c17() {
        exhaustive_walk(C17, "c17");
    }

    #[test]
    fn exhaustive_walk_reconvergent() {
        exhaustive_walk(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ns = AND(a, b)\np = NOT(s)\nq = BUF(s)\ny = AND(p, q)\n",
            "reconv",
        );
    }

    #[test]
    fn exhaustive_walk_with_constants() {
        exhaustive_walk(
            "INPUT(a)\nOUTPUT(y)\nk = CONST1()\nt = XOR(a, k)\ny = OR(t, a)\n",
            "consts",
        );
    }

    #[test]
    fn detection_matches_fault_simulation() {
        let circuit = compile(C17, "c17");
        let faults = adi_netlist::fault::FaultList::full(circuit.netlist());
        let patterns = crate::PatternSet::exhaustive(5);
        let matrix = crate::FaultSimulator::for_circuit(&circuit, &faults).no_drop_matrix(&patterns);
        let mut sim = DualMachineSim::for_circuit(&circuit);
        for (id, fault) in faults.iter() {
            sim.begin_target(fault);
            for p in 0..patterns.len() {
                let pattern = patterns.get(p);
                for (pi, v) in pattern.iter().enumerate() {
                    sim.assign(pi, v);
                }
                assert_eq!(
                    sim.detected(),
                    matrix.detected(id, p),
                    "fault {fault} pattern {p}"
                );
                for _ in 0..pattern.len() {
                    sim.retract_frame();
                }
            }
            sim.end_target();
        }
    }

    #[test]
    fn x_path_refreshes_the_frontier_itself() {
        // Calling x_path_exists without an explicit refresh_frontier
        // must answer from the *current* state, not a stale snapshot.
        let circuit = compile(C17, "c17");
        let g10 = circuit.netlist().find_node("G10").unwrap();
        let mut sim = DualMachineSim::for_circuit(&circuit);
        sim.begin_target(Fault::stem_at(g10, false));
        // Excite the fault (G1 = 0 makes G10 = NAND(0, X) good-1,
        // faulty-0) without touching refresh_frontier first.
        sim.assign(0, false); // G1
        assert!(
            sim.x_path_exists(),
            "an X-path to G22 exists straight after excitation"
        );
        sim.end_target();
    }


    #[test]
    fn x_path_cache_skips_repeat_walks() {
        // Same-state queries hit the version cache; after a state change
        // a surviving witness path is revalidated without a fresh DFS.
        let circuit = compile(C17, "c17");
        let g10 = circuit.netlist().find_node("G10").unwrap();
        let mut sim = DualMachineSim::for_circuit(&circuit);
        sim.begin_target(Fault::stem_at(g10, false));
        sim.assign(0, false); // G1 = 0 excites G10 s-a-0
        assert!(sim.x_path_exists());
        assert!(sim.x_path_exists()); // unchanged state: cached answer
        assert_eq!(sim.xpath_counters(), (2, 1), "second query must not walk");
        // G2 = 1 leaves G16 (and so G22) X: the recorded witness through
        // G22 survives, so the state change costs a revalidation only.
        sim.assign(1, true);
        assert!(sim.x_path_exists());
        assert_eq!(sim.xpath_counters(), (3, 1), "witness revalidation, no walk");
        // Retract back to just the excitation: the cache is invalidated
        // by the trail, and the answer stays exact.
        sim.retract_frame();
        assert!(sim.x_path_exists());
        let (queries, walks) = sim.xpath_counters();
        assert_eq!(queries, 4);
        assert!(walks < queries, "the cache must absorb some queries");
        sim.end_target();
    }

    #[test]
    fn counters_accumulate() {
        let circuit = compile(C17, "c17");
        let y = circuit.netlist().find_node("G22").unwrap();
        let mut sim = DualMachineSim::for_circuit(&circuit);
        sim.begin_target(Fault::stem_at(y, false));
        let before = sim.counters();
        sim.assign(0, true);
        let after = sim.counters();
        assert!(after.1 > before.1, "an assignment changes at least the PI");
        sim.end_target();
    }

    #[test]
    #[should_panic(expected = "previous target not ended")]
    fn double_begin_panics() {
        let circuit = compile(C17, "c17");
        let y = circuit.netlist().find_node("G22").unwrap();
        let mut sim = DualMachineSim::for_circuit(&circuit);
        sim.begin_target(Fault::stem_at(y, false));
        sim.begin_target(Fault::stem_at(y, true));
    }

    #[test]
    #[should_panic(expected = "no decision frame")]
    fn retracting_injection_frame_panics() {
        let circuit = compile(C17, "c17");
        let y = circuit.netlist().find_node("G22").unwrap();
        let mut sim = DualMachineSim::for_circuit(&circuit);
        sim.begin_target(Fault::stem_at(y, false));
        sim.retract_frame();
    }

    #[test]
    fn end_target_restores_baseline_for_next_target() {
        let circuit = compile(C17, "c17");
        let nl = circuit.netlist();
        let a = nl.find_node("G1").unwrap();
        let y = nl.find_node("G22").unwrap();
        let mut sim = DualMachineSim::for_circuit(&circuit);
        sim.begin_target(Fault::stem_at(y, false));
        sim.assign(0, true);
        sim.assign(2, true);
        sim.end_target();
        // A fresh target over the same evaluator starts from all-X.
        sim.begin_target(Fault::stem_at(a, true));
        assert!(sim.is_consistent());
        assert_eq!(sim.good_of(a), T3::X);
        sim.end_target();
    }
}
