//! Kleene 3-valued logic for twin-machine (good/faulty) simulation.
//!
//! PODEM tracks two 3-valued simulations per decision state: the **good**
//! machine and the **faulty** machine (with the target fault injected). A
//! node carries the composite D-calculus value:
//!
//! | good | faulty | composite |
//! |------|--------|-----------|
//! | 0    | 0      | 0         |
//! | 1    | 1      | 1         |
//! | 1    | 0      | D         |
//! | 0    | 1      | D̄         |
//! | any X | —     | X         |
//!
//! The type lives here (rather than in `adi-atpg`, which re-exports it)
//! so the incremental dual-machine evaluator ([`crate::t3event`]) can sit
//! below the ATPG layer.

use std::fmt;

use adi_netlist::{GateKind, NodeId};

/// A ternary logic value: 0, 1, or unknown.
///
/// # Examples
///
/// ```
/// use adi_sim::t3::T3;
///
/// assert_eq!(T3::Zero & T3::X, T3::Zero); // 0 dominates AND
/// assert_eq!(T3::One & T3::X, T3::X);
/// assert_eq!(!T3::X, T3::X);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum T3 {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown / unassigned.
    #[default]
    X,
}

impl T3 {
    /// Converts a boolean.
    #[inline]
    pub fn from_bool(b: bool) -> T3 {
        if b {
            T3::One
        } else {
            T3::Zero
        }
    }

    /// The boolean value, or `None` for [`T3::X`].
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            T3::Zero => Some(false),
            T3::One => Some(true),
            T3::X => None,
        }
    }

    /// Returns `true` unless the value is [`T3::X`].
    #[inline]
    pub fn is_binary(self) -> bool {
        self != T3::X
    }
}

impl std::ops::BitAnd for T3 {
    type Output = T3;
    #[inline]
    fn bitand(self, rhs: T3) -> T3 {
        match (self, rhs) {
            (T3::Zero, _) | (_, T3::Zero) => T3::Zero,
            (T3::One, T3::One) => T3::One,
            _ => T3::X,
        }
    }
}

impl std::ops::BitOr for T3 {
    type Output = T3;
    #[inline]
    fn bitor(self, rhs: T3) -> T3 {
        match (self, rhs) {
            (T3::One, _) | (_, T3::One) => T3::One,
            (T3::Zero, T3::Zero) => T3::Zero,
            _ => T3::X,
        }
    }
}

impl std::ops::BitXor for T3 {
    type Output = T3;
    #[inline]
    fn bitxor(self, rhs: T3) -> T3 {
        match (self, rhs) {
            (T3::X, _) | (_, T3::X) => T3::X,
            (a, b) => T3::from_bool(a != b),
        }
    }
}

impl std::ops::Not for T3 {
    type Output = T3;
    #[inline]
    fn not(self) -> T3 {
        match self {
            T3::Zero => T3::One,
            T3::One => T3::Zero,
            T3::X => T3::X,
        }
    }
}

impl fmt::Display for T3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            T3::Zero => write!(f, "0"),
            T3::One => write!(f, "1"),
            T3::X => write!(f, "X"),
        }
    }
}

/// The single ternary gate truth table, generic over the fanin index
/// type (node ids or CSR positions) so the two public entry points
/// cannot drift apart.
#[inline]
fn eval_gate<I: Copy>(kind: GateKind, fanins: &[I], value: impl Fn(I) -> T3) -> T3 {
    match kind {
        GateKind::Input => panic!("inputs are loaded, not evaluated"),
        GateKind::Buf => value(fanins[0]),
        GateKind::Not => !value(fanins[0]),
        GateKind::And => fanins.iter().fold(T3::One, |acc, &f| acc & value(f)),
        GateKind::Nand => !fanins.iter().fold(T3::One, |acc, &f| acc & value(f)),
        GateKind::Or => fanins.iter().fold(T3::Zero, |acc, &f| acc | value(f)),
        GateKind::Nor => !fanins.iter().fold(T3::Zero, |acc, &f| acc | value(f)),
        GateKind::Xor => fanins.iter().fold(T3::Zero, |acc, &f| acc ^ value(f)),
        GateKind::Xnor => !fanins.iter().fold(T3::Zero, |acc, &f| acc ^ value(f)),
        GateKind::Const0 => T3::Zero,
        GateKind::Const1 => T3::One,
    }
}

/// Evaluates `kind` over ternary fanin values supplied by `value`.
///
/// # Panics
///
/// Panics for [`GateKind::Input`], which has no logic function.
#[inline]
pub fn eval_t3(kind: GateKind, fanins: &[NodeId], value: impl Fn(NodeId) -> T3) -> T3 {
    eval_gate(kind, fanins, value)
}

/// Evaluates `kind` over [`LevelizedCsr`](adi_netlist::LevelizedCsr)
/// position fanins with ternary values supplied by `value` — the
/// position-space twin of [`eval_t3`].
///
/// # Panics
///
/// Panics for [`GateKind::Input`], which has no logic function.
#[inline]
pub fn eval_t3_pos(kind: GateKind, fanins: &[u32], value: impl Fn(u32) -> T3) -> T3 {
    eval_gate(kind, fanins, value)
}

/// Evaluates `kind` with one fanin pin forced to `stuck` — branch-fault
/// injection for a faulty machine. Generic over the fanin index type
/// (node ids or CSR positions) for the same single-truth-table reason
/// as [`eval_t3`]/[`eval_t3_pos`].
///
/// # Panics
///
/// Panics for kinds without fanin pins ([`GateKind::Input`] and the
/// constants).
#[inline]
pub fn eval_t3_branch<I: Copy>(
    kind: GateKind,
    fanins: &[I],
    pin: usize,
    stuck: T3,
    value: impl Fn(I) -> T3,
) -> T3 {
    let at = |i: usize| {
        if i == pin {
            stuck
        } else {
            value(fanins[i])
        }
    };
    match kind {
        GateKind::Buf => at(0),
        GateKind::Not => !at(0),
        GateKind::And => (0..fanins.len()).fold(T3::One, |acc, i| acc & at(i)),
        GateKind::Nand => !(0..fanins.len()).fold(T3::One, |acc, i| acc & at(i)),
        GateKind::Or => (0..fanins.len()).fold(T3::Zero, |acc, i| acc | at(i)),
        GateKind::Nor => !(0..fanins.len()).fold(T3::Zero, |acc, i| acc | at(i)),
        GateKind::Xor => (0..fanins.len()).fold(T3::Zero, |acc, i| acc ^ at(i)),
        GateKind::Xnor => !(0..fanins.len()).fold(T3::Zero, |acc, i| acc ^ at(i)),
        GateKind::Input | GateKind::Const0 | GateKind::Const1 => {
            panic!("{kind:?} has no fanin pins")
        }
    }
}

/// The composite D-calculus value of a node, combining the good and faulty
/// machine values.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum V5 {
    /// Both machines 0.
    Zero,
    /// Both machines 1.
    One,
    /// Good 1, faulty 0.
    D,
    /// Good 0, faulty 1.
    Dbar,
    /// Unknown in at least one machine.
    X,
}

impl V5 {
    /// Combines good/faulty ternary values into the composite view.
    pub fn from_pair(good: T3, faulty: T3) -> V5 {
        match (good, faulty) {
            (T3::Zero, T3::Zero) => V5::Zero,
            (T3::One, T3::One) => V5::One,
            (T3::One, T3::Zero) => V5::D,
            (T3::Zero, T3::One) => V5::Dbar,
            _ => V5::X,
        }
    }

    /// Returns `true` for [`V5::D`] or [`V5::Dbar`] — a visible fault
    /// effect.
    pub fn is_fault_effect(self) -> bool {
        matches!(self, V5::D | V5::Dbar)
    }
}

impl fmt::Display for V5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            V5::Zero => write!(f, "0"),
            V5::One => write!(f, "1"),
            V5::D => write!(f, "D"),
            V5::Dbar => write!(f, "D'"),
            V5::X => write!(f, "X"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kleene_and_tables() {
        use T3::*;
        assert_eq!(Zero & Zero, Zero);
        assert_eq!(Zero & X, Zero);
        assert_eq!(X & Zero, Zero);
        assert_eq!(One & One, One);
        assert_eq!(One & X, X);
        assert_eq!(X & X, X);
    }

    #[test]
    fn kleene_or_tables() {
        use T3::*;
        assert_eq!(One | X, One);
        assert_eq!(X | One, One);
        assert_eq!(Zero | Zero, Zero);
        assert_eq!(Zero | X, X);
        assert_eq!(X | X, X);
    }

    #[test]
    fn kleene_xor_and_not() {
        use T3::*;
        assert_eq!(One ^ One, Zero);
        assert_eq!(One ^ Zero, One);
        assert_eq!(One ^ X, X);
        assert_eq!(!Zero, One);
        assert_eq!(!X, X);
    }

    #[test]
    fn t3_matches_bool_logic_when_binary() {
        for a in [false, true] {
            for b in [false, true] {
                let (ta, tb) = (T3::from_bool(a), T3::from_bool(b));
                assert_eq!((ta & tb).to_bool(), Some(a && b));
                assert_eq!((ta | tb).to_bool(), Some(a || b));
                assert_eq!((ta ^ tb).to_bool(), Some(a != b));
            }
        }
    }

    #[test]
    fn eval_t3_gates() {
        let ids = [NodeId::new(0), NodeId::new(1)];
        let vals = [T3::One, T3::X];
        let get = |n: NodeId| vals[n.index()];
        assert_eq!(eval_t3(GateKind::And, &ids, get), T3::X);
        assert_eq!(eval_t3(GateKind::Or, &ids, get), T3::One);
        assert_eq!(eval_t3(GateKind::Nor, &ids, get), T3::Zero);
        assert_eq!(eval_t3(GateKind::Xor, &ids, get), T3::X);
        let zeros = |_: NodeId| T3::Zero;
        assert_eq!(eval_t3(GateKind::Nand, &ids, zeros), T3::One);
        assert_eq!(eval_t3(GateKind::Const1, &[], |_| T3::X), T3::One);
    }

    #[test]
    fn position_eval_matches_node_eval() {
        let ids = [NodeId::new(0), NodeId::new(1)];
        let pos = [0u32, 1u32];
        for kind in [
            GateKind::Buf,
            GateKind::Not,
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            let fanins = if matches!(kind, GateKind::Buf | GateKind::Not) {
                (&ids[..1], &pos[..1])
            } else {
                (&ids[..], &pos[..])
            };
            for a in [T3::Zero, T3::One, T3::X] {
                for b in [T3::Zero, T3::One, T3::X] {
                    let vals = [a, b];
                    assert_eq!(
                        eval_t3(kind, fanins.0, |n| vals[n.index()]),
                        eval_t3_pos(kind, fanins.1, |p| vals[p as usize]),
                        "{kind:?} {a} {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn branch_eval_forces_exactly_one_pin() {
        let pos = [0u32, 1u32];
        let vals = [T3::One, T3::One];
        // AND(1, 1) with pin 1 forced to 0 reads 0.
        assert_eq!(
            eval_t3_branch(GateKind::And, &pos, 1, T3::Zero, |p| vals[p as usize]),
            T3::Zero
        );
        // ... while pin 0 still reads its driver.
        assert_eq!(
            eval_t3_branch(GateKind::Or, &pos, 1, T3::Zero, |p| vals[p as usize]),
            T3::One
        );
    }

    #[test]
    fn v5_composition() {
        assert_eq!(V5::from_pair(T3::One, T3::Zero), V5::D);
        assert_eq!(V5::from_pair(T3::Zero, T3::One), V5::Dbar);
        assert_eq!(V5::from_pair(T3::One, T3::One), V5::One);
        assert_eq!(V5::from_pair(T3::X, T3::Zero), V5::X);
        assert!(V5::D.is_fault_effect());
        assert!(!V5::X.is_fault_effect());
    }

    #[test]
    fn display_forms() {
        assert_eq!(T3::X.to_string(), "X");
        assert_eq!(V5::Dbar.to_string(), "D'");
    }
}
