//! Input vectors and bit-packed pattern sets.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::word::SimWord;

/// A single input vector: one boolean per primary input.
///
/// For circuits with at most 64 inputs a pattern has a *decimal
/// representation*, following the paper's Table 1 convention: the first
/// input is the most significant bit.
///
/// # Examples
///
/// ```
/// use adi_sim::Pattern;
///
/// let p = Pattern::from_value(4, 0b1010);
/// assert_eq!(p.get(0), true);  // first input = MSB
/// assert_eq!(p.get(3), false);
/// assert_eq!(p.value(), Some(10));
/// assert_eq!(p.to_string(), "1010");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Pattern {
    bits: Vec<bool>,
}

impl Pattern {
    /// Creates a pattern from explicit bits (index 0 = first input).
    pub fn new(bits: Vec<bool>) -> Self {
        Pattern { bits }
    }

    /// Creates the pattern whose decimal representation is `value`, for a
    /// circuit with `num_inputs` inputs. The first input is the most
    /// significant bit.
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs > 64`.
    pub fn from_value(num_inputs: usize, value: u64) -> Self {
        assert!(num_inputs <= 64, "decimal representation limited to 64 inputs");
        let bits = (0..num_inputs)
            .map(|i| (value >> (num_inputs - 1 - i)) & 1 == 1)
            .collect();
        Pattern { bits }
    }

    /// The decimal representation (first input = MSB), or `None` if the
    /// pattern has more than 64 inputs.
    pub fn value(&self) -> Option<u64> {
        if self.bits.len() > 64 {
            return None;
        }
        let mut v = 0u64;
        for &b in &self.bits {
            v = (v << 1) | u64::from(b);
        }
        Some(v)
    }

    /// Number of inputs.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Returns `true` if the pattern has no inputs.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The value of input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// Sets the value of input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, v: bool) {
        self.bits[i] = v;
    }

    /// The bits as a slice (index 0 = first input).
    pub fn as_slice(&self) -> &[bool] {
        &self.bits
    }

    /// Iterates over the bits.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = bool> + '_ {
        self.bits.iter().copied()
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.bits {
            write!(f, "{}", u8::from(b))?;
        }
        Ok(())
    }
}

/// An ordered set of input vectors, bit-packed 64 patterns per word.
///
/// Storage is input-major: for each input there is one machine word per
/// *block* of 64 consecutive patterns; bit `p % 64` of block `p / 64` holds
/// the input's value in pattern `p`. This is the layout consumed directly
/// by the parallel-pattern simulators.
///
/// # Examples
///
/// ```
/// use adi_sim::{Pattern, PatternSet};
///
/// let mut set = PatternSet::new(3);
/// set.push(&Pattern::from_value(3, 0b101));
/// set.push(&Pattern::from_value(3, 0b010));
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.get(1).value(), Some(2));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PatternSet {
    num_inputs: usize,
    num_patterns: usize,
    /// `words[input][block]`
    words: Vec<Vec<u64>>,
}

impl PatternSet {
    /// Creates an empty set for circuits with `num_inputs` inputs.
    pub fn new(num_inputs: usize) -> Self {
        PatternSet {
            num_inputs,
            num_patterns: 0,
            words: vec![Vec::new(); num_inputs],
        }
    }

    /// Generates `count` uniformly random patterns from a fixed seed.
    ///
    /// The same `(num_inputs, count, seed)` triple always produces the same
    /// set.
    pub fn random(num_inputs: usize, count: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_blocks = count.div_ceil(64);
        let mut words = vec![vec![0u64; n_blocks]; num_inputs];
        // Generate pattern-major so that extending a set with the same seed
        // keeps the common prefix identical.
        for block in 0..n_blocks {
            for w in words.iter_mut() {
                w[block] = rng.gen::<u64>();
            }
        }
        // Mask tail bits beyond `count` for a canonical representation.
        if !count.is_multiple_of(64) {
            let mask = (1u64 << (count % 64)) - 1;
            for w in words.iter_mut() {
                *w.last_mut().expect("at least one block") &= mask;
            }
        }
        PatternSet {
            num_inputs,
            num_patterns: count,
            words,
        }
    }

    /// Generates all `2^num_inputs` patterns in increasing decimal order.
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs > 20` (more than a million patterns).
    pub fn exhaustive(num_inputs: usize) -> Self {
        assert!(num_inputs <= 20, "exhaustive sets limited to 20 inputs");
        let count = 1usize << num_inputs;
        let mut set = PatternSet::new(num_inputs);
        for v in 0..count {
            set.push(&Pattern::from_value(num_inputs, v as u64));
        }
        set
    }

    /// Builds a set from explicit patterns.
    ///
    /// # Panics
    ///
    /// Panics if any pattern's length differs from `num_inputs`.
    pub fn from_patterns<'a, I>(num_inputs: usize, patterns: I) -> Self
    where
        I: IntoIterator<Item = &'a Pattern>,
    {
        let mut set = PatternSet::new(num_inputs);
        for p in patterns {
            set.push(p);
        }
        set
    }

    /// Appends one pattern.
    ///
    /// # Panics
    ///
    /// Panics if the pattern length differs from the set's input count.
    pub fn push(&mut self, pattern: &Pattern) {
        assert_eq!(
            pattern.len(),
            self.num_inputs,
            "pattern width {} does not match set width {}",
            pattern.len(),
            self.num_inputs
        );
        let block = self.num_patterns / 64;
        let bit = 1u64 << (self.num_patterns % 64);
        for (i, w) in self.words.iter_mut().enumerate() {
            if w.len() <= block {
                w.push(0);
            }
            if pattern.get(i) {
                w[block] |= bit;
            }
        }
        // Keep shape consistent even for zero-input circuits.
        self.num_patterns += 1;
    }

    /// Appends one pattern decoded directly from an ASCII bit string
    /// (`'0'`/`'1'`, first input first), without materializing an
    /// intermediate [`Pattern`].
    ///
    /// This is the streaming ingest path for servers: request payloads
    /// land straight in the packed `words` representation. The set is
    /// unchanged on error.
    ///
    /// # Errors
    ///
    /// Returns a message if the string's length differs from the set's
    /// input count or it contains a byte other than `'0'`/`'1'`.
    ///
    /// # Examples
    ///
    /// ```
    /// use adi_sim::PatternSet;
    ///
    /// let mut set = PatternSet::new(3);
    /// set.push_bits("101").unwrap();
    /// assert_eq!(set.get(0).value(), Some(5));
    /// assert!(set.push_bits("10x").is_err());
    /// assert_eq!(set.len(), 1);
    /// ```
    pub fn push_bits(&mut self, bits: &str) -> Result<(), String> {
        let bytes = bits.as_bytes();
        if bytes.len() != self.num_inputs {
            return Err(format!(
                "pattern width {} does not match set width {}",
                bytes.len(),
                self.num_inputs
            ));
        }
        // Validate before mutating so a malformed string leaves the set
        // untouched.
        if let Some(bad) = bytes.iter().find(|&&b| b != b'0' && b != b'1') {
            return Err(format!(
                "invalid pattern character '{}' (want '0' or '1')",
                char::from(*bad)
            ));
        }
        let block = self.num_patterns / 64;
        let bit = 1u64 << (self.num_patterns % 64);
        for (w, &byte) in self.words.iter_mut().zip(bytes) {
            if w.len() <= block {
                w.push(0);
            }
            if byte == b'1' {
                w[block] |= bit;
            }
        }
        self.num_patterns += 1;
        Ok(())
    }

    /// Number of patterns in the set.
    pub fn len(&self) -> usize {
        self.num_patterns
    }

    /// Returns `true` if the set contains no patterns.
    pub fn is_empty(&self) -> bool {
        self.num_patterns == 0
    }

    /// Number of inputs per pattern.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of 64-pattern blocks.
    pub fn num_blocks(&self) -> usize {
        self.num_patterns.div_ceil(64)
    }

    /// The packed word of `input` for pattern block `block`.
    ///
    /// # Panics
    ///
    /// Panics if `input` or `block` is out of range.
    #[inline]
    pub fn input_word(&self, input: usize, block: usize) -> u64 {
        self.words[input][block]
    }

    /// Mask of valid pattern bits within `block` (all ones except possibly
    /// in the final block).
    pub fn valid_mask(&self, block: usize) -> u64 {
        let full_blocks = self.num_patterns / 64;
        if block < full_blocks {
            !0
        } else {
            let rem = self.num_patterns % 64;
            debug_assert!(block == full_blocks && rem != 0, "block out of range");
            (1u64 << rem) - 1
        }
    }

    /// Number of `N`-lane superblocks (`N * 64` patterns each) covering
    /// the set.
    pub fn num_superblocks(&self, lanes: usize) -> usize {
        self.num_patterns.div_ceil(lanes * 64)
    }

    /// The packed [`SimWord`] of `input` for superblock `superblock`
    /// (lane `k` = 64-pattern block `superblock * N + k`). Lanes past
    /// the final block are zero.
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range.
    #[inline]
    pub fn input_word_wide<const N: usize>(&self, input: usize, superblock: usize) -> SimWord<N> {
        let blocks = &self.words[input];
        let mut w = SimWord::ZERO;
        for k in 0..N {
            let b = superblock * N + k;
            if b < blocks.len() {
                w.0[k] = blocks[b];
            }
        }
        w
    }

    /// Mask of valid pattern bits within superblock `superblock`: the
    /// wide counterpart of [`valid_mask`](Self::valid_mask), with lanes
    /// past the final block zeroed.
    pub fn valid_mask_wide<const N: usize>(&self, superblock: usize) -> SimWord<N> {
        let n_blocks = self.num_blocks();
        let mut m = SimWord::ZERO;
        for k in 0..N {
            let b = superblock * N + k;
            if b < n_blocks {
                m.0[k] = self.valid_mask(b);
            }
        }
        m
    }

    /// Extracts pattern `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn get(&self, index: usize) -> Pattern {
        assert!(index < self.num_patterns, "pattern index out of range");
        let block = index / 64;
        let bit = index % 64;
        Pattern::new(
            (0..self.num_inputs)
                .map(|i| self.words[i][block] >> bit & 1 == 1)
                .collect(),
        )
    }

    /// Returns a new set containing only the first `count` patterns.
    ///
    /// # Panics
    ///
    /// Panics if `count > len()`.
    pub fn truncated(&self, count: usize) -> PatternSet {
        assert!(count <= self.num_patterns);
        let n_blocks = count.div_ceil(64);
        let mut words: Vec<Vec<u64>> = self
            .words
            .iter()
            .map(|w| w[..n_blocks].to_vec())
            .collect();
        if !count.is_multiple_of(64) {
            let mask = (1u64 << (count % 64)) - 1;
            for w in words.iter_mut() {
                *w.last_mut().expect("nonempty") &= mask;
            }
        }
        PatternSet {
            num_inputs: self.num_inputs,
            num_patterns: count,
            words,
        }
    }

    /// Returns a new set containing the patterns at `indices`, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> PatternSet {
        let mut out = PatternSet::new(self.num_inputs);
        for &i in indices {
            out.push(&self.get(i));
        }
        out
    }

    /// Iterates over all patterns in order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Pattern> + '_ {
        (0..self.num_patterns).map(|i| self.get(i))
    }

    /// Serializes the set as text: one pattern per line, `0`/`1` per
    /// input (first input leftmost), with `#` comment support on read.
    ///
    /// This is the usual ATE-exchange text form for scan test sets.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.num_patterns * (self.num_inputs + 1));
        for p in self.iter() {
            out.push_str(&p.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses the text form produced by [`to_text`](Self::to_text).
    /// Blank lines and `#` comments are ignored.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line: a character
    /// other than `0`/`1`, or a width differing from `num_inputs`.
    pub fn from_text(num_inputs: usize, text: &str) -> Result<Self, String> {
        let mut set = PatternSet::new(num_inputs);
        for (lineno, raw) in text.lines().enumerate() {
            let line = match raw.find('#') {
                Some(i) => &raw[..i],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if line.len() != num_inputs {
                return Err(format!(
                    "line {}: expected {} bits, found {}",
                    lineno + 1,
                    num_inputs,
                    line.len()
                ));
            }
            let mut bits = Vec::with_capacity(num_inputs);
            for ch in line.chars() {
                match ch {
                    '0' => bits.push(false),
                    '1' => bits.push(true),
                    other => {
                        return Err(format!(
                            "line {}: invalid character `{other}`",
                            lineno + 1
                        ))
                    }
                }
            }
            set.push(&Pattern::new(bits));
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_value_roundtrip() {
        for v in 0..16u64 {
            let p = Pattern::from_value(4, v);
            assert_eq!(p.value(), Some(v));
        }
    }

    #[test]
    fn pattern_display_msb_first() {
        assert_eq!(Pattern::from_value(4, 0b0110).to_string(), "0110");
        assert_eq!(Pattern::from_value(2, 0b01).to_string(), "01");
    }

    #[test]
    fn set_push_and_get() {
        let mut set = PatternSet::new(5);
        for v in [3u64, 17, 0, 31] {
            set.push(&Pattern::from_value(5, v));
        }
        assert_eq!(set.len(), 4);
        assert_eq!(set.get(0).value(), Some(3));
        assert_eq!(set.get(1).value(), Some(17));
        assert_eq!(set.get(3).value(), Some(31));
    }

    #[test]
    fn exhaustive_enumerates_in_order() {
        let set = PatternSet::exhaustive(3);
        assert_eq!(set.len(), 8);
        for i in 0..8 {
            assert_eq!(set.get(i).value(), Some(i as u64));
        }
    }

    #[test]
    fn random_is_reproducible() {
        let a = PatternSet::random(10, 100, 42);
        let b = PatternSet::random(10, 100, 42);
        assert_eq!(a, b);
        let c = PatternSet::random(10, 100, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn random_prefix_is_stable_across_lengths() {
        let long = PatternSet::random(6, 130, 7);
        let short = PatternSet::random(6, 65, 7);
        for i in 0..65 {
            assert_eq!(long.get(i), short.get(i), "pattern {i}");
        }
    }

    #[test]
    fn valid_mask_covers_tail() {
        let set = PatternSet::random(3, 70, 1);
        assert_eq!(set.num_blocks(), 2);
        assert_eq!(set.valid_mask(0), !0);
        assert_eq!(set.valid_mask(1), (1u64 << 6) - 1);
        let full = PatternSet::random(3, 64, 1);
        assert_eq!(full.valid_mask(0), !0);
    }

    #[test]
    fn truncated_keeps_prefix() {
        let set = PatternSet::random(4, 100, 9);
        let t = set.truncated(37);
        assert_eq!(t.len(), 37);
        for i in 0..37 {
            assert_eq!(t.get(i), set.get(i));
        }
    }

    #[test]
    fn subset_selects_indices() {
        let set = PatternSet::exhaustive(3);
        let sub = set.subset(&[7, 0, 2]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.get(0).value(), Some(7));
        assert_eq!(sub.get(1).value(), Some(0));
        assert_eq!(sub.get(2).value(), Some(2));
    }

    #[test]
    fn input_words_match_bits() {
        let mut set = PatternSet::new(2);
        set.push(&Pattern::new(vec![true, false]));
        set.push(&Pattern::new(vec![true, true]));
        set.push(&Pattern::new(vec![false, true]));
        assert_eq!(set.input_word(0, 0) & 0b111, 0b011);
        assert_eq!(set.input_word(1, 0) & 0b111, 0b110);
    }

    #[test]
    #[should_panic(expected = "does not match set width")]
    fn push_checks_width() {
        let mut set = PatternSet::new(3);
        set.push(&Pattern::from_value(2, 1));
    }

    #[test]
    fn push_bits_matches_push() {
        let reference = PatternSet::random(9, 130, 23);
        let mut streamed = PatternSet::new(9);
        for p in reference.iter() {
            streamed.push_bits(&p.to_string()).unwrap();
        }
        assert_eq!(streamed, reference);
    }

    #[test]
    fn push_bits_rejects_bad_input_without_mutating() {
        let mut set = PatternSet::new(3);
        set.push_bits("101").unwrap();
        assert!(set.push_bits("10").unwrap_err().contains("width 2"));
        assert!(set
            .push_bits("1x0")
            .unwrap_err()
            .contains("invalid pattern character 'x'"));
        let reference = {
            let mut s = PatternSet::new(3);
            s.push(&Pattern::from_value(3, 0b101));
            s
        };
        assert_eq!(set, reference, "failed pushes leave the set untouched");
    }

    #[test]
    fn iter_yields_all() {
        let set = PatternSet::exhaustive(2);
        let values: Vec<u64> = set.iter().map(|p| p.value().unwrap()).collect();
        assert_eq!(values, vec![0, 1, 2, 3]);
    }

    #[test]
    fn wide_accessors_stack_blocks_in_pattern_order() {
        let set = PatternSet::random(4, 300, 17);
        assert_eq!(set.num_blocks(), 5);
        assert_eq!(set.num_superblocks(1), 5);
        assert_eq!(set.num_superblocks(2), 3);
        assert_eq!(set.num_superblocks(4), 2);
        assert_eq!(set.num_superblocks(8), 1);
        for input in 0..4 {
            let w: SimWord<4> = set.input_word_wide(input, 0);
            for k in 0..4 {
                assert_eq!(w.lane(k), set.input_word(input, k), "lane {k}");
            }
            // Second superblock: block 4 then three zero lanes.
            let w: SimWord<4> = set.input_word_wide(input, 1);
            assert_eq!(w.lane(0), set.input_word(input, 4));
            assert_eq!(w.lane(1), 0);
            assert_eq!(w.lane(3), 0);
        }
        let m: SimWord<4> = set.valid_mask_wide(1);
        assert_eq!(m.lane(0), set.valid_mask(4)); // 300 % 64 = 44 bits
        assert_eq!(m.lane(1), 0);
        let m: SimWord<8> = set.valid_mask_wide(0);
        for k in 0..5 {
            assert_eq!(m.lane(k), set.valid_mask(k));
        }
        for k in 5..8 {
            assert_eq!(m.lane(k), 0);
        }
    }

    #[test]
    fn text_roundtrip() {
        let set = PatternSet::random(7, 33, 5);
        let text = set.to_text();
        let back = PatternSet::from_text(7, &text).unwrap();
        assert_eq!(set, back);
    }

    #[test]
    fn text_parsing_skips_comments_and_blanks() {
        let text = "# test set\n101\n\n 010  # trailing\n";
        let set = PatternSet::from_text(3, text).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.get(0).value(), Some(5));
        assert_eq!(set.get(1).value(), Some(2));
    }

    #[test]
    fn text_parsing_rejects_bad_lines() {
        assert!(PatternSet::from_text(3, "10")
            .unwrap_err()
            .contains("expected 3 bits"));
        assert!(PatternSet::from_text(2, "1x")
            .unwrap_err()
            .contains("invalid character"));
    }
}
