//! Regression coverage for the generation-stamped D-frontier candidate
//! ring: on a deep circuit with high candidate turnover, the candidate
//! list must stay bounded by the *live* effect region across thousands
//! of decisions (instead of accumulating every position ever touched),
//! and membership answers must stay exactly equal to the full-scan
//! reference after every compaction.

use adi_netlist::fault::Fault;
use adi_netlist::{CompiledCircuit, GateKind, NetlistBuilder, NodeId};
use adi_sim::t3::T3;
use adi_sim::t3event::DualMachineSim;

const CHAINS: usize = 16;
const CHAIN_LEN: usize = 256;

/// A fault-effect "selector" circuit: one faulted head `h = BUF(a)`
/// fans out to `CHAINS` AND gates, each gated by its own select input
/// and followed by a `CHAIN_LEN`-deep buffer chain to an output.
/// Asserting `sel_k` floods chain `k` with fault effects; retracting it
/// kills them all — maximal candidate turnover with a small live set.
fn selector_circuit() -> CompiledCircuit {
    let mut b = NetlistBuilder::new("selector");
    let a = b.add_input("a");
    let sels: Vec<NodeId> = (0..CHAINS).map(|k| b.add_input(format!("sel{k}"))).collect();
    let h = b.add_gate(GateKind::Buf, "h", &[a]).unwrap();
    for (k, &sel) in sels.iter().enumerate() {
        let mut prev = b.add_gate(GateKind::And, format!("g{k}"), &[h, sel]).unwrap();
        for i in 0..CHAIN_LEN {
            prev = b
                .add_gate(GateKind::Buf, format!("c{k}_{i}"), &[prev])
                .unwrap();
        }
        b.mark_output(prev);
    }
    CompiledCircuit::compile(b.build().unwrap())
}

/// The D-frontier by the full-scan definition, via public accessors
/// only (stem-fault circuits: no branch-gate special case).
fn reference_frontier(sim: &DualMachineSim) -> Vec<NodeId> {
    let circuit = sim.circuit().clone();
    let nl = circuit.netlist();
    let view = circuit.view();
    let effect = |n: NodeId| {
        let p = view.position(n);
        let (g, f) = (sim.good_at(p), sim.faulty_at(p));
        g.is_binary() && f.is_binary() && g != f
    };
    nl.node_ids()
        .filter(|&n| {
            let p = view.position(n);
            let out_unknown = sim.good_at(p) == T3::X || sim.faulty_at(p) == T3::X;
            out_unknown
                && nl.kind(n) != GateKind::Input
                && nl.fanins(n).iter().any(|&f| effect(f))
        })
        .collect()
}

#[test]
fn candidate_ring_stays_bounded_under_turnover() {
    let circuit = selector_circuit();
    let nl = circuit.netlist();
    let n = nl.num_nodes();
    assert!(n > 4000, "the regression needs a deep circuit, got {n} nodes");
    let a = nl.find_node("a").unwrap();

    let mut sim = DualMachineSim::for_circuit(&circuit);
    sim.begin_target(Fault::stem_at(a, false)); // a stuck-at-0
    sim.assign(0, true); // excite: good a = 1, faulty a = 0

    let mut max_candidates = 0usize;
    let mut step = 0usize;
    for round in 0..24 {
        for k in 0..CHAINS {
            // Flood chain k with fault effects, then kill them again.
            sim.assign(1 + k, true);
            max_candidates = max_candidates.max(sim.frontier_candidates());
            // Membership stays exact across compactions.
            sim.refresh_frontier();
            assert_eq!(
                sim.frontier_ids(),
                reference_frontier(&sim),
                "round {round} chain {k} (active)"
            );
            sim.retract_frame();
            max_candidates = max_candidates.max(sim.frontier_candidates());
            if step.is_multiple_of(64) {
                assert!(sim.is_consistent(), "round {round} chain {k}");
                sim.refresh_frontier();
                assert_eq!(
                    sim.frontier_ids(),
                    reference_frontier(&sim),
                    "round {round} chain {k} (retracted)"
                );
            }
            step += 1;
        }
    }

    assert!(
        sim.frontier_compactions() > 0,
        "the walk must have triggered compactions"
    );
    // The whole point: every chain was flooded (24 times over), yet the
    // candidate list never grew anywhere near the CHAINS * CHAIN_LEN
    // positions that carried an effect at some point. The bound is a
    // constant factor of one live chain (~CHAIN_LEN + CHAINS), not of
    // the circuit.
    assert!(
        max_candidates <= 4 * (CHAIN_LEN + CHAINS + 2),
        "candidate list reached {max_candidates}, expected it bounded by \
         the live region (~{})",
        CHAIN_LEN + CHAINS
    );
    assert!(
        max_candidates < n / 2,
        "candidate list reached {max_candidates} of {n} positions — \
         compaction is not bounding it"
    );

    sim.retract_frame(); // the excitation assign
    sim.end_target();
    assert!(sim.is_consistent());
}

#[test]
fn compaction_survives_target_reuse() {
    // After heavy turnover, a fresh target on the same evaluator starts
    // from a clean generation and stays exact.
    let circuit = selector_circuit();
    let nl = circuit.netlist();
    let a = nl.find_node("a").unwrap();
    let g0 = nl.find_node("g0").unwrap();
    let mut sim = DualMachineSim::for_circuit(&circuit);

    sim.begin_target(Fault::stem_at(a, false));
    sim.assign(0, true);
    for k in 0..CHAINS {
        sim.assign(1 + k, true);
        sim.retract_frame();
    }
    sim.retract_frame();
    sim.end_target();
    let compactions = sim.frontier_compactions();
    assert!(compactions > 0);

    sim.begin_target(Fault::stem_at(g0, true)); // g0 stuck-at-1
    sim.assign(0, true);
    sim.assign(1, false); // sel0 = 0: good g0 = 0, faulty 1 -> excited
    assert!(sim.is_consistent());
    sim.refresh_frontier();
    assert_eq!(sim.frontier_ids(), reference_frontier(&sim));
    sim.end_target();
}
