//! Partially-specified input assignments produced by PODEM.

use std::fmt;

use adi_sim::Pattern;

use crate::value::T3;

/// A test cube: one optional boolean per primary input.
///
/// PODEM assigns only the inputs it needs; the rest remain unspecified
/// (`None`) and are later completed by a [`FillStrategy`]. Any completion
/// of a cube returned by PODEM detects the targeted fault — the 5-valued
/// D-calculus proof holds for every assignment of the X inputs.
///
/// [`FillStrategy`]: crate::FillStrategy
///
/// # Examples
///
/// ```
/// use adi_atpg::TestCube;
///
/// let cube = TestCube::from_options(vec![Some(true), None, Some(false)]);
/// assert_eq!(cube.specified_count(), 2);
/// assert_eq!(cube.get(1), None);
/// assert_eq!(cube.to_string(), "1X0");
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TestCube {
    values: Vec<Option<bool>>,
}

impl TestCube {
    /// Creates a fully unspecified cube over `num_inputs` inputs.
    pub fn unspecified(num_inputs: usize) -> Self {
        TestCube {
            values: vec![None; num_inputs],
        }
    }

    /// Creates a cube from explicit optional values.
    pub fn from_options(values: Vec<Option<bool>>) -> Self {
        TestCube { values }
    }

    /// Creates a cube from ternary values.
    pub fn from_t3(values: &[T3]) -> Self {
        TestCube {
            values: values.iter().map(|v| v.to_bool()).collect(),
        }
    }

    /// Number of inputs.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the cube covers no inputs.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value assigned to input `i` (`None` = unspecified).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> Option<bool> {
        self.values[i]
    }

    /// Assigns input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, v: Option<bool>) {
        self.values[i] = v;
    }

    /// Number of specified (binary) inputs.
    pub fn specified_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }

    /// Fraction of inputs left unspecified. Zero for an empty cube.
    pub fn x_ratio(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            1.0 - self.specified_count() as f64 / self.values.len() as f64
        }
    }

    /// Returns `true` if `pattern` is a completion of this cube (agrees on
    /// every specified input).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn covers(&self, pattern: &Pattern) -> bool {
        assert_eq!(self.len(), pattern.len());
        self.values
            .iter()
            .zip(pattern.iter())
            .all(|(&c, p)| c.is_none() || c == Some(p))
    }

    /// The underlying optional values.
    pub fn as_slice(&self) -> &[Option<bool>] {
        &self.values
    }
}

impl fmt::Display for TestCube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in &self.values {
            match v {
                Some(true) => write!(f, "1")?,
                Some(false) => write!(f, "0")?,
                None => write!(f, "X")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_counters() {
        let mut c = TestCube::unspecified(4);
        assert_eq!(c.specified_count(), 0);
        assert!((c.x_ratio() - 1.0).abs() < 1e-12);
        c.set(0, Some(true));
        c.set(3, Some(false));
        assert_eq!(c.specified_count(), 2);
        assert!((c.x_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn covers_checks_specified_bits_only() {
        let c = TestCube::from_options(vec![Some(true), None, Some(false)]);
        assert!(c.covers(&Pattern::new(vec![true, false, false])));
        assert!(c.covers(&Pattern::new(vec![true, true, false])));
        assert!(!c.covers(&Pattern::new(vec![false, true, false])));
        assert!(!c.covers(&Pattern::new(vec![true, true, true])));
    }

    #[test]
    fn from_t3_maps_x() {
        let c = TestCube::from_t3(&[T3::One, T3::X, T3::Zero]);
        assert_eq!(c.get(0), Some(true));
        assert_eq!(c.get(1), None);
        assert_eq!(c.get(2), Some(false));
    }

    #[test]
    fn display_uses_x() {
        let c = TestCube::from_options(vec![None, Some(false)]);
        assert_eq!(c.to_string(), "X0");
    }
}
