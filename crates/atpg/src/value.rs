//! Kleene 3-valued logic for PODEM's twin-machine simulation.
//!
//! The types moved to [`adi_sim::t3`] in 0.3.0 so the incremental
//! dual-machine evaluator ([`adi_sim::t3event`]) can live below the ATPG
//! layer; this module re-exports them under their historical paths
//! (`adi_atpg::value::T3`, `adi_atpg::T3`, …) unchanged.
//!
//! PODEM tracks two 3-valued simulations per decision state: the **good**
//! machine and the **faulty** machine (with the target fault injected). A
//! node carries the composite D-calculus value ([`V5`]):
//!
//! | good | faulty | composite |
//! |------|--------|-----------|
//! | 0    | 0      | 0         |
//! | 1    | 1      | 1         |
//! | 1    | 0      | D         |
//! | 0    | 1      | D̄         |
//! | any X | —     | X         |

pub use adi_sim::t3::{eval_t3, eval_t3_branch, eval_t3_pos, T3, V5};
