//! Ordered-fault-list test generation with fault dropping.
//!
//! This is the paper's Section-4 procedure: a plain test generator **without
//! dynamic compaction heuristics**. Faults are targeted in exactly the
//! order they appear in the supplied fault order; every generated test is
//! fault-simulated against the remaining undetected faults, which are then
//! dropped. The per-test newly-detected counts form the fault-coverage
//! curve that Figure 1 and Table 7 are built from.
//!
//! Two drop loops implement that procedure, selected by
//! [`DropLoopKind`] and producing **bit-identical** [`TestGenResult`]s:
//! the scalar loop (one
//! [`detect_pattern`](adi_sim::FaultSimulator::detect_pattern) call per
//! generated test, kept as the differential oracle) and the default
//! batched loop, which accumulates generated tests into 64-wide blocks
//! through an [`adi_sim::DropSession`] and pays the stem-region engine's
//! per-region propagation once per block instead of one per-fault cone
//! walk per test.
//!
//! With [`TestGenConfig::atpg_threads`] above one, the batched loop runs
//! **speculatively**: a pool of worker threads generates tests for
//! upcoming targets while the calling thread commits outcomes strictly
//! in ordering position under the first-win rule (see the
//! [`speculate`] module docs for the invariants).
//! Every knob combination — drop loop, width, threads, speculation —
//! produces the same [`TestGenResult`].

use std::sync::OnceLock;
use std::time::Instant;

use adi_netlist::fault::{FaultId, FaultList};
use adi_netlist::CompiledCircuit;
use adi_obs::SpanSite;
use adi_sim::faultsim::SimScratch;
use adi_sim::{CoverageCurve, DropSession, FaultSimulator, Pattern, SimWidth};

use crate::{speculate, FillStrategy, Podem, PodemConfig, PodemOutcome, PodemStats, SatFallback, SatResolved};

/// Per-target PODEM span (both drop loops enter it around
/// `podem.generate`, so a traced `atpg` request shows every target).
static SPAN_PODEM: SpanSite = SpanSite::new("atpg.podem");

/// Which drop loop [`TestGenerator`] runs generated tests through. Both
/// produce bit-identical results.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum DropLoopKind {
    /// One scalar `detect_pattern` call (one cone walk per active fault)
    /// per generated test. Kept as the differential-testing oracle.
    Scalar,
    /// Generated tests batched into 64-wide blocks and dropped through
    /// the stem-region engine ([`adi_sim::DropSession`]). Bit-identical
    /// to [`Scalar`](DropLoopKind::Scalar), asymptotically faster.
    #[default]
    Batched,
}

impl std::fmt::Display for DropLoopKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DropLoopKind::Scalar => write!(f, "scalar"),
            DropLoopKind::Batched => write!(f, "batched"),
        }
    }
}

/// Configuration for a [`TestGenerator`] run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TestGenConfig {
    /// PODEM backtrack limit, engine, and SAT-fallback policy per
    /// target. The driver's default turns the fallback **on**
    /// ([`SatFallback::AbortedOnly`]): every backtrack-aborted target is
    /// handed to the formal layer for a redundancy proof or a test cube.
    pub podem: PodemConfig,
    /// How unspecified cube inputs are completed.
    pub fill: FillStrategy,
    /// Seed for random fill (each test uses `seed + test_index`).
    pub fill_seed: u64,
    /// Which drop loop simulates generated tests against the active
    /// faults ([`DropLoopKind::Batched`] by default).
    pub drop_loop: DropLoopKind,
    /// Simulation word width of the batched drop loop (blocks hold
    /// `width.bits()` pending tests). All widths are bit-identical; the
    /// scalar loop ignores this.
    pub width: SimWidth,
    /// Threads the batched drop loop's flushes split across
    /// (region-parallel; results identical at every count).
    pub threads: usize,
    /// Total threads of the batched ATPG loop itself. `1` runs the
    /// sequential loop; `>= 2` runs the speculative first-win loop with
    /// `atpg_threads - 1` PODEM workers plus the committing caller.
    /// Results are **bit-identical** at every value (the determinism
    /// contract of the [`speculate`] module); the
    /// scalar oracle loop ignores this. Defaults to the
    /// `ADI_ATPG_THREADS` environment variable (read once and cached),
    /// falling back to `1`.
    pub atpg_threads: usize,
    /// How far past the commit position speculation workers may claim
    /// targets, in ordering positions — the **cap** of the adaptive
    /// lookahead window (`>= 1`). The committer resizes the live window
    /// within `[1, speculation_depth]` from the observed waste rate
    /// (see the [`speculate`] module docs). Larger caps keep workers
    /// busy across skip runs but allow more wasted PODEM work. Has no
    /// effect on results, only on wall clock and
    /// [`PodemStats::wasted_speculations`].
    pub speculation_depth: usize,
}

/// The cached `ADI_ATPG_THREADS` default for
/// [`TestGenConfig::atpg_threads`].
fn atpg_threads_from_env() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("ADI_ATPG_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or(1)
    })
}

impl Default for TestGenConfig {
    fn default() -> Self {
        TestGenConfig {
            podem: PodemConfig {
                sat_fallback: SatFallback::AbortedOnly,
                ..PodemConfig::default()
            },
            fill: FillStrategy::Random,
            fill_seed: 0x0AD1_F111,
            drop_loop: DropLoopKind::default(),
            width: SimWidth::default(),
            threads: 1,
            atpg_threads: atpg_threads_from_env(),
            speculation_depth: 16,
        }
    }
}

/// Final classification of each fault after a test-generation run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultStatus {
    /// Detected by a test generated for this very fault.
    DetectedAsTarget {
        /// Index of the detecting test in [`TestGenResult::tests`].
        test: u32,
    },
    /// Dropped by the fault simulation of a test generated for another
    /// fault (the paper's "accidental detection").
    DetectedAccidentally {
        /// Index of the detecting test in [`TestGenResult::tests`].
        test: u32,
    },
    /// Proven untestable — by the PODEM search itself or, under
    /// [`SatFallback::AbortedOnly`], by an UNSAT cone-restricted miter
    /// after the search aborted.
    Redundant,
    /// PODEM hit its backtrack limit and no SAT verdict rescued it
    /// (fallback off, or the solver's conflict limit also ran out).
    Aborted,
}

impl FaultStatus {
    /// Returns `true` for either detected variant.
    pub fn is_detected(self) -> bool {
        matches!(
            self,
            FaultStatus::DetectedAsTarget { .. } | FaultStatus::DetectedAccidentally { .. }
        )
    }
}

/// Wall-clock nanoseconds spent in each phase of a test-generation run,
/// carried in [`TestGenResult::timing`].
///
/// Timing is a measurement, not an output: it is **excluded from
/// [`TestGenResult`] equality** so the differential contracts (scalar vs
/// batched, sequential vs speculative, every width and thread count)
/// can keep comparing whole results.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Nanoseconds inside `Podem::generate`. Under speculation this sums
    /// over every worker run — including discarded ones — so it can
    /// exceed wall clock; the excess over the sequential run is the
    /// price of the wasted speculation.
    pub generate_ns: u64,
    /// Nanoseconds in the drop path: pending-cover checks, test pushes,
    /// and block flushes (plus the warm-up admission phase, for
    /// [`TestGenerator::run_with_random_phase`]).
    pub drop_ns: u64,
    /// Nanoseconds the committer spent blocked on a speculation slot
    /// that no worker had finished yet (zero for sequential runs). High
    /// values mean the worker pool, not the drop path, is the
    /// bottleneck.
    pub commit_wait_ns: u64,
}

impl PhaseTimings {
    /// Accumulates `other` into `self` (phase-wise saturating sum).
    fn absorb(&mut self, other: PhaseTimings) {
        self.generate_ns = self.generate_ns.saturating_add(other.generate_ns);
        self.drop_ns = self.drop_ns.saturating_add(other.drop_ns);
        self.commit_wait_ns = self.commit_wait_ns.saturating_add(other.commit_wait_ns);
    }
}

/// The outcome of one ordered test-generation run.
///
/// # Equality
///
/// `PartialEq`/`Eq` compare the **deterministic outputs** — tests,
/// targets, per-test detection counts, classifications, and the
/// deterministic [`PodemStats`] counters. The [`timing`] field
/// (wall-clock measurement) and the scheduling-dependent
/// [`PodemStats::wasted_speculations`] diagnostic are excluded, which is
/// what lets the determinism lattice assert whole-result equality
/// across drop loops, widths, and thread counts.
///
/// [`timing`]: TestGenResult::timing
#[derive(Clone, Debug)]
pub struct TestGenResult {
    /// The generated test set, in generation order.
    pub tests: Vec<Pattern>,
    /// For each test, the fault it was generated for.
    pub targets: Vec<FaultId>,
    /// For each test, how many previously-undetected faults it detected.
    pub new_detections: Vec<u32>,
    /// Per-fault classification (indexed by `FaultId`).
    pub status: Vec<FaultStatus>,
    /// PODEM counters for the whole run. Under speculation, the
    /// committed counters (everything except
    /// [`PodemStats::wasted_speculations`]) are the exact sums the
    /// sequential loop would have produced.
    pub podem_stats: PodemStats,
    /// Per-phase wall-clock breakdown (excluded from equality).
    pub timing: PhaseTimings,
}

impl PartialEq for TestGenResult {
    fn eq(&self, other: &Self) -> bool {
        self.tests == other.tests
            && self.targets == other.targets
            && self.new_detections == other.new_detections
            && self.status == other.status
            && self.podem_stats.deterministic() == other.podem_stats.deterministic()
    }
}

impl Eq for TestGenResult {}

impl TestGenResult {
    /// Number of generated tests.
    pub fn num_tests(&self) -> usize {
        self.tests.len()
    }

    /// Number of faults proven redundant.
    pub fn num_redundant(&self) -> usize {
        self.status
            .iter()
            .filter(|s| matches!(s, FaultStatus::Redundant))
            .count()
    }

    /// Number of aborted faults.
    pub fn num_aborted(&self) -> usize {
        self.status
            .iter()
            .filter(|s| matches!(s, FaultStatus::Aborted))
            .count()
    }

    /// Number of detected faults.
    pub fn num_detected(&self) -> usize {
        self.status.iter().filter(|s| s.is_detected()).count()
    }

    /// Fault coverage over all targeted faults.
    pub fn coverage(&self) -> f64 {
        if self.status.is_empty() {
            0.0
        } else {
            self.num_detected() as f64 / self.status.len() as f64
        }
    }

    /// Fault efficiency: detected + proven-redundant over all faults
    /// (aborts are the only unresolved faults).
    pub fn efficiency(&self) -> f64 {
        if self.status.is_empty() {
            0.0
        } else {
            (self.num_detected() + self.num_redundant()) as f64 / self.status.len() as f64
        }
    }

    /// The fault-coverage curve `n_ord(i)` of this run.
    pub fn coverage_curve(&self) -> CoverageCurve {
        CoverageCurve::from_new_detections(&self.new_detections, self.status.len())
    }

    /// One-struct digest of the run: counts, coverage, the per-phase
    /// wall-clock split, and the wasted-speculation counter — everything
    /// needed to see where a run spent its time (and whether speculation
    /// paid off) without a profiler.
    pub fn summary(&self) -> TestGenSummary {
        TestGenSummary {
            num_tests: self.num_tests(),
            num_detected: self.num_detected(),
            num_redundant: self.num_redundant(),
            num_aborted: self.num_aborted(),
            coverage: self.coverage(),
            generate_ns: self.timing.generate_ns,
            drop_ns: self.timing.drop_ns,
            commit_wait_ns: self.timing.commit_wait_ns,
            wasted_speculations: self.podem_stats.wasted_speculations,
            aborted_faults: self.podem_stats.aborted,
            sat_resolved: self.podem_stats.sat_resolved,
        }
    }
}

/// Digest of a [`TestGenResult`] ([`TestGenResult::summary`]): result
/// counts plus the phase timing and speculation-waste diagnostics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TestGenSummary {
    /// Generated tests.
    pub num_tests: usize,
    /// Detected faults (as target or accidentally).
    pub num_detected: usize,
    /// Faults proven redundant.
    pub num_redundant: usize,
    /// Aborted faults.
    pub num_aborted: usize,
    /// Fault coverage over all faults.
    pub coverage: f64,
    /// Wall-clock nanoseconds in `Podem::generate`
    /// ([`PhaseTimings::generate_ns`]).
    pub generate_ns: u64,
    /// Wall-clock nanoseconds in the drop path
    /// ([`PhaseTimings::drop_ns`]).
    pub drop_ns: u64,
    /// Wall-clock nanoseconds the committer waited on unfinished
    /// speculation ([`PhaseTimings::commit_wait_ns`]).
    pub commit_wait_ns: u64,
    /// Speculative PODEM runs whose result was discarded
    /// ([`PodemStats::wasted_speculations`]).
    pub wasted_speculations: u64,
    /// Targets whose PODEM search hit the backtrack limit, **before**
    /// any SAT fallback ([`PodemStats::aborted`]). Compare with
    /// `num_aborted`, which counts the faults still unresolved after
    /// the fallback had its say.
    pub aborted_faults: u64,
    /// How the SAT fallback resolved those aborts
    /// ([`PodemStats::sat_resolved`]; all-zero with the fallback off).
    pub sat_resolved: SatResolved,
}

/// Drives PODEM over an ordered fault list with fault dropping.
///
/// # Examples
///
/// ```
/// use adi_netlist::{bench_format, CompiledCircuit};
/// use adi_atpg::{TestGenConfig, TestGenerator};
///
/// # fn main() -> Result<(), adi_netlist::NetlistError> {
/// let n = bench_format::parse(
///     "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and2")?;
/// let circuit = CompiledCircuit::compile(n);
/// let faults = circuit.collapsed_faults();
/// let order: Vec<_> = faults.ids().collect();
/// let result = TestGenerator::for_circuit(&circuit, faults, TestGenConfig::default())
///     .run(&order);
/// assert_eq!(result.coverage(), 1.0);
/// assert!(result.num_tests() <= faults.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TestGenerator<'a> {
    pub(crate) circuit: CompiledCircuit,
    pub(crate) faults: &'a FaultList,
    pub(crate) config: TestGenConfig,
}

impl<'a> TestGenerator<'a> {
    /// Creates a driver for `faults` of `circuit`, sharing the
    /// compilation's levelized view, FFR decomposition, and SCOAP
    /// measures.
    pub fn for_circuit(
        circuit: &CompiledCircuit,
        faults: &'a FaultList,
        config: TestGenConfig,
    ) -> Self {
        TestGenerator {
            circuit: circuit.clone(),
            faults,
            config,
        }
    }

    /// Runs test generation targeting faults in exactly `order`.
    ///
    /// Every fault id must belong to the fault list; ids may appear at most
    /// once. Faults missing from `order` are never targeted (but may still
    /// be detected accidentally and are counted in the totals).
    ///
    /// # Panics
    ///
    /// Panics if `order` contains an out-of-range id or a duplicate.
    pub fn run(&self, order: &[FaultId]) -> TestGenResult {
        self.run_phase(order, &vec![false; self.faults.len()])
    }

    /// Validates `order` (in-range, duplicate-free) and marks targets.
    pub(crate) fn validate_order(&self, order: &[FaultId]) {
        let n_faults = self.faults.len();
        let mut seen = vec![false; n_faults];
        for &id in order {
            assert!(id.index() < n_faults, "fault id {id} out of range");
            assert!(!seen[id.index()], "fault id {id} duplicated in order");
            seen[id.index()] = true;
        }
    }

    /// The deterministic phase shared by [`run`](Self::run) and
    /// [`run_with_random_phase`](Self::run_with_random_phase):
    /// `predropped` faults are excluded from simulation and left
    /// unclassified (reported as [`FaultStatus::Aborted`] unless the
    /// caller overwrites them). Dispatches on the configured
    /// [`DropLoopKind`]; both variants are bit-identical.
    fn run_phase(&self, order: &[FaultId], predropped: &[bool]) -> TestGenResult {
        match self.config.drop_loop {
            DropLoopKind::Scalar => self.run_phase_scalar(order, predropped),
            DropLoopKind::Batched => self.run_phase_batched(order, predropped),
        }
    }

    /// The scalar drop loop: one `detect_pattern` call (a cone walk per
    /// active fault) per generated test.
    fn run_phase_scalar(&self, order: &[FaultId], predropped: &[bool]) -> TestGenResult {
        let n_faults = self.faults.len();
        assert_eq!(predropped.len(), n_faults);
        self.validate_order(order);

        let mut podem = Podem::for_circuit(&self.circuit, self.config.podem);
        let sim = FaultSimulator::for_circuit(&self.circuit, self.faults);
        let mut scratch = SimScratch::for_circuit(&self.circuit);

        // `status[f]` is None while f is undetected and unresolved.
        let mut status: Vec<Option<FaultStatus>> = vec![None; n_faults];
        let mut active: Vec<FaultId> = self
            .faults
            .ids()
            .filter(|id| !predropped[id.index()])
            .collect();
        let mut tests: Vec<Pattern> = Vec::new();
        let mut targets: Vec<FaultId> = Vec::new();
        let mut new_detections: Vec<u32> = Vec::new();
        let mut timing = PhaseTimings::default();

        for &target in order {
            if status[target.index()].is_some() {
                continue; // already detected or resolved
            }
            let fault = self.faults.fault(target);
            let t0 = Instant::now();
            let outcome = {
                let _span = SPAN_PODEM.enter();
                podem.generate(fault)
            };
            timing.generate_ns += t0.elapsed().as_nanos() as u64;
            match outcome {
                PodemOutcome::Test(cube) => {
                    let test_index = tests.len() as u32;
                    let seed = self
                        .config
                        .fill_seed
                        .wrapping_add(u64::from(test_index));
                    let pattern = self.config.fill.fill(&cube, seed);
                    let t0 = Instant::now();
                    let detected = sim.detect_pattern(&pattern, &active, &mut scratch);
                    timing.drop_ns += t0.elapsed().as_nanos() as u64;
                    debug_assert!(
                        detected.contains(&target),
                        "generated test {pattern} does not detect its target {fault}"
                    );
                    for &d in &detected {
                        status[d.index()] = Some(if d == target {
                            FaultStatus::DetectedAsTarget { test: test_index }
                        } else {
                            FaultStatus::DetectedAccidentally { test: test_index }
                        });
                    }
                    active.retain(|id| status[id.index()].is_none());
                    new_detections.push(detected.len() as u32);
                    tests.push(pattern);
                    targets.push(target);
                }
                PodemOutcome::Untestable => {
                    status[target.index()] = Some(FaultStatus::Redundant);
                    active.retain(|&id| id != target);
                }
                PodemOutcome::Aborted => {
                    status[target.index()] = Some(FaultStatus::Aborted);
                    active.retain(|&id| id != target);
                }
            }
        }

        TestGenResult {
            tests,
            targets,
            new_detections,
            status: finalize_status(status),
            podem_stats: podem.stats(),
            timing,
        }
    }

    /// The batched drop loop: generated tests accumulate into a wide
    /// [`DropSession`] block (`width.bits()` lanes); before each target
    /// is handed to PODEM a single per-fault cone walk checks whether a
    /// *pending* test already covers it (the batched equivalent of the
    /// scalar loop's already-dropped skip), and full blocks are drained
    /// through the stem-region engine. The resulting test set,
    /// classifications, and per-test detection counts are bit-identical
    /// to the scalar loop's at every width and thread count.
    fn run_phase_batched(&self, order: &[FaultId], predropped: &[bool]) -> TestGenResult {
        if self.config.atpg_threads > 1 {
            return match self.config.width {
                SimWidth::W1 => speculate::run_speculative::<1>(self, order, predropped),
                SimWidth::W2 => speculate::run_speculative::<2>(self, order, predropped),
                SimWidth::W4 => speculate::run_speculative::<4>(self, order, predropped),
                SimWidth::W8 => speculate::run_speculative::<8>(self, order, predropped),
            };
        }
        match self.config.width {
            SimWidth::W1 => self.run_phase_batched_w::<1>(order, predropped),
            SimWidth::W2 => self.run_phase_batched_w::<2>(order, predropped),
            SimWidth::W4 => self.run_phase_batched_w::<4>(order, predropped),
            SimWidth::W8 => self.run_phase_batched_w::<8>(order, predropped),
        }
    }

    fn run_phase_batched_w<const N: usize>(
        &self,
        order: &[FaultId],
        predropped: &[bool],
    ) -> TestGenResult {
        let n_faults = self.faults.len();
        assert_eq!(predropped.len(), n_faults);
        self.validate_order(order);

        let mut podem = Podem::for_circuit(&self.circuit, self.config.podem);
        let mut session = DropSession::<N>::for_circuit(&self.circuit, self.faults)
            .with_threads(self.config.threads.max(1));

        let mut status: Vec<Option<FaultStatus>> = vec![None; n_faults];
        let mut active: Vec<FaultId> = self
            .faults
            .ids()
            .filter(|id| !predropped[id.index()])
            .collect();
        let mut tests: Vec<Pattern> = Vec::new();
        let mut targets: Vec<FaultId> = Vec::new();
        let mut new_detections: Vec<u32> = Vec::new();
        let mut timing = PhaseTimings::default();

        for &target in order {
            if status[target.index()].is_some() {
                continue; // resolved by a flushed block, or aborted/redundant
            }
            let t0 = Instant::now();
            let covered = !session.pending_detections(target).is_zero();
            timing.drop_ns += t0.elapsed().as_nanos() as u64;
            if covered {
                continue; // a pending test covers it; classified at flush
            }
            let fault = self.faults.fault(target);
            let t0 = Instant::now();
            let outcome = {
                let _span = SPAN_PODEM.enter();
                podem.generate(fault)
            };
            timing.generate_ns += t0.elapsed().as_nanos() as u64;
            match outcome {
                PodemOutcome::Test(cube) => {
                    let test_index = tests.len() as u32;
                    let seed = self
                        .config
                        .fill_seed
                        .wrapping_add(u64::from(test_index));
                    let pattern = self.config.fill.fill(&cube, seed);
                    let t0 = Instant::now();
                    session.push(&pattern);
                    debug_assert!(
                        session.pending_detections(target).bit(session.pending() - 1),
                        "generated test {pattern} does not detect its target {fault}"
                    );
                    tests.push(pattern);
                    targets.push(target);
                    if session.is_full() {
                        apply_flush(
                            &mut session,
                            &targets,
                            &mut status,
                            &mut active,
                            &mut new_detections,
                            None,
                        );
                    }
                    timing.drop_ns += t0.elapsed().as_nanos() as u64;
                }
                PodemOutcome::Untestable => {
                    status[target.index()] = Some(FaultStatus::Redundant);
                    active.retain(|&id| id != target);
                }
                PodemOutcome::Aborted => {
                    status[target.index()] = Some(FaultStatus::Aborted);
                    active.retain(|&id| id != target);
                }
            }
        }
        let t0 = Instant::now();
        apply_flush(
            &mut session,
            &targets,
            &mut status,
            &mut active,
            &mut new_detections,
            None,
        );
        timing.drop_ns += t0.elapsed().as_nanos() as u64;

        TestGenResult {
            tests,
            targets,
            new_detections,
            status: finalize_status(status),
            podem_stats: podem.stats(),
            timing,
        }
    }

    /// Runs test generation with a **random-pattern warm-up phase**: the
    /// `warmup` vectors that detect at least one new fault are admitted
    /// into the test set first (dropping the faults they detect), then
    /// PODEM targets the survivors in `order`.
    ///
    /// This is the classic two-phase industrial flow. The paper argues it
    /// is *counter-productive* for compact test sets and steep coverage
    /// curves — the `ablation` harness uses this method to demonstrate
    /// that claim.
    ///
    /// The warm-up vectors appear at the front of
    /// [`TestGenResult::tests`]; their entries in
    /// [`TestGenResult::targets`] are the first fault each one detected.
    ///
    /// # Panics
    ///
    /// Panics if `order` contains an out-of-range or duplicate id, or if
    /// the warm-up pattern width does not match the circuit.
    pub fn run_with_random_phase(
        &self,
        order: &[FaultId],
        warmup: &adi_sim::PatternSet,
    ) -> TestGenResult {
        let mut dropped = vec![false; self.faults.len()];
        let mut active: Vec<FaultId> = self.faults.ids().collect();
        let mut warm_tests: Vec<Pattern> = Vec::new();
        let mut warm_targets: Vec<FaultId> = Vec::new();
        let mut warm_news: Vec<u32> = Vec::new();
        let mut warm_status: Vec<(FaultId, u32)> = Vec::new();
        let warm_start = Instant::now();

        // Admit every warm-up vector that detects at least one new
        // fault. Detection of a fault by a vector is independent of what
        // was dropped before, so the batched path can simulate whole
        // 64-vector blocks at once and replay the admission bookkeeping
        // lane by lane — bit-identical to the scalar per-vector loop.
        match self.config.drop_loop {
            DropLoopKind::Scalar => {
                let sim = FaultSimulator::for_circuit(&self.circuit, self.faults);
                let mut scratch = SimScratch::for_circuit(&self.circuit);
                for p in 0..warmup.len() {
                    let pattern = warmup.get(p);
                    let detected = sim.detect_pattern(&pattern, &active, &mut scratch);
                    if detected.is_empty() {
                        continue;
                    }
                    let test_index = warm_tests.len() as u32;
                    for &d in &detected {
                        dropped[d.index()] = true;
                        warm_status.push((d, test_index));
                    }
                    active.retain(|id| !dropped[id.index()]);
                    warm_targets.push(detected[0]);
                    warm_news.push(detected.len() as u32);
                    warm_tests.push(pattern);
                }
            }
            DropLoopKind::Batched => {
                let mut warm = WarmupState {
                    active: &mut active,
                    dropped: &mut dropped,
                    tests: &mut warm_tests,
                    targets: &mut warm_targets,
                    news: &mut warm_news,
                    status: &mut warm_status,
                };
                match self.config.width {
                    SimWidth::W1 => self.warmup_batched_w::<1>(warmup, &mut warm),
                    SimWidth::W2 => self.warmup_batched_w::<2>(warmup, &mut warm),
                    SimWidth::W4 => self.warmup_batched_w::<4>(warmup, &mut warm),
                    SimWidth::W8 => self.warmup_batched_w::<8>(warmup, &mut warm),
                }
            }
        }

        // The warm-up admission phase is all fault simulation: book it
        // under the drop phase.
        let mut timing = PhaseTimings {
            drop_ns: warm_start.elapsed().as_nanos() as u64,
            ..PhaseTimings::default()
        };

        // Deterministic ATPG on the survivors.
        let remaining: Vec<FaultId> = order
            .iter()
            .copied()
            .filter(|id| !dropped[id.index()])
            .collect();
        let tail = self.run_phase(&remaining, &dropped);

        // Stitch the two phases together, offsetting the tail's test ids.
        let offset = warm_tests.len() as u32;
        let mut status: Vec<FaultStatus> = tail
            .status
            .iter()
            .map(|s| match *s {
                FaultStatus::DetectedAsTarget { test } => {
                    FaultStatus::DetectedAsTarget { test: test + offset }
                }
                FaultStatus::DetectedAccidentally { test } => {
                    FaultStatus::DetectedAccidentally { test: test + offset }
                }
                other => other,
            })
            .collect();
        for (id, test) in warm_status {
            status[id.index()] = FaultStatus::DetectedAccidentally { test };
        }

        let mut tests = warm_tests;
        tests.extend(tail.tests);
        let mut targets = warm_targets;
        targets.extend(tail.targets);
        let mut new_detections = warm_news;
        new_detections.extend(tail.new_detections);
        timing.absorb(tail.timing);

        TestGenResult {
            tests,
            targets,
            new_detections,
            status,
            podem_stats: tail.podem_stats,
            timing,
        }
    }
}

/// Mutable bookkeeping of the warm-up admission loop, bundled so the
/// width-dispatched batched variant has one parameter instead of six.
struct WarmupState<'s> {
    active: &'s mut Vec<FaultId>,
    dropped: &'s mut [bool],
    tests: &'s mut Vec<Pattern>,
    targets: &'s mut Vec<FaultId>,
    news: &'s mut Vec<u32>,
    status: &'s mut Vec<(FaultId, u32)>,
}

impl<'a> TestGenerator<'a> {
    /// The batched warm-up admission loop at width `N`: whole wide
    /// blocks are simulated at once and the admission bookkeeping is
    /// replayed lane by lane — bit-identical to the scalar per-vector
    /// loop at every width.
    fn warmup_batched_w<const N: usize>(
        &self,
        warmup: &adi_sim::PatternSet,
        w: &mut WarmupState<'_>,
    ) {
        let mut session = DropSession::<N>::for_circuit(&self.circuit, self.faults)
            .with_threads(self.config.threads.max(1));
        let mut p = 0;
        while p < warmup.len() {
            let base = p;
            while p < warmup.len() && !session.is_full() {
                session.push(&warmup.get(p));
                p += 1;
            }
            let lists = session.flush(w.active);
            for (off, detected) in lists.iter().enumerate() {
                if detected.is_empty() {
                    continue;
                }
                let test_index = w.tests.len() as u32;
                for &d in detected {
                    w.dropped[d.index()] = true;
                    w.status.push((d, test_index));
                }
                w.targets.push(detected[0]);
                w.news.push(detected.len() as u32);
                w.tests.push(warmup.get(base + off));
            }
            w.active.retain(|id| !w.dropped[id.index()]);
        }
    }
}

/// Resolves still-`None` statuses: untargeted, never-detected faults
/// were deliberately excluded from `order`; treat them as aborted so
/// totals stay consistent without inventing detections.
pub(crate) fn finalize_status(status: Vec<Option<FaultStatus>>) -> Vec<FaultStatus> {
    status
        .into_iter()
        .map(|s| s.unwrap_or(FaultStatus::Aborted))
        .collect()
}

/// Drains `session` and replays the drop bookkeeping for the flushed
/// lanes: lane `j` of the block is test `new_detections.len() + j`, its
/// detected faults are classified against that test (as-target for the
/// lane's own target, accidental otherwise), and `active` is pruned —
/// exactly the per-test bookkeeping the scalar loop performs inline.
///
/// `resolved` is the speculative loop's shared pruning hints: every
/// fault classified here is flagged so in-flight workers stop targeting
/// it. Hints are advisory (the committer re-checks `status` at commit
/// time), so the sequential loops pass `None`.
pub(crate) fn apply_flush<const N: usize>(
    session: &mut DropSession<'_, N>,
    targets: &[FaultId],
    status: &mut [Option<FaultStatus>],
    active: &mut Vec<FaultId>,
    new_detections: &mut Vec<u32>,
    resolved: Option<&[std::sync::atomic::AtomicBool]>,
) {
    let lists = session.flush(active);
    if lists.is_empty() {
        return;
    }
    let base = new_detections.len();
    for (lane, detected) in lists.iter().enumerate() {
        let test_index = (base + lane) as u32;
        let target = targets[base + lane];
        for &d in detected {
            status[d.index()] = Some(if d == target {
                FaultStatus::DetectedAsTarget { test: test_index }
            } else {
                FaultStatus::DetectedAccidentally { test: test_index }
            });
            if let Some(hints) = resolved {
                hints[d.index()].store(true, std::sync::atomic::Ordering::Relaxed);
            }
        }
        new_detections.push(detected.len() as u32);
    }
    active.retain(|id| status[id.index()].is_none());
}

#[cfg(test)]
mod tests {
    use super::*;
    use adi_netlist::{bench_format, Netlist};
    use adi_sim::PatternSet;

    const C17: &str = "
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

    fn c17() -> Netlist {
        bench_format::parse(C17, "c17").unwrap()
    }

    fn compile(netlist: &Netlist) -> CompiledCircuit {
        CompiledCircuit::compile(netlist.clone())
    }

    #[test]
    fn c17_reaches_full_coverage() {
        let n = c17();
        let faults = FaultList::collapsed(&n);
        let order: Vec<FaultId> = faults.ids().collect();
        let result = TestGenerator::for_circuit(&compile(&n), &faults, TestGenConfig::default()).run(&order);
        assert_eq!(result.num_detected(), faults.len());
        assert_eq!(result.num_redundant(), 0);
        assert_eq!(result.num_aborted(), 0);
        assert!((result.efficiency() - 1.0).abs() < 1e-12);
        // c17 needs at least 4 tests; a reasonable ATPG finds <= ~10.
        assert!(result.num_tests() >= 4 && result.num_tests() <= faults.len());
    }

    #[test]
    fn every_test_detects_its_target() {
        let n = c17();
        let faults = FaultList::collapsed(&n);
        let order: Vec<FaultId> = faults.ids().collect();
        let result = TestGenerator::for_circuit(&compile(&n), &faults, TestGenConfig::default()).run(&order);
        let sim = FaultSimulator::for_circuit(&compile(&n), &faults);
        let mut scratch = SimScratch::for_circuit(&compile(&n));
        for (i, (test, &target)) in result.tests.iter().zip(&result.targets).enumerate() {
            assert!(
                sim.detects(test, target, Some(&mut scratch)),
                "test {i} misses its target"
            );
        }
    }

    #[test]
    fn detections_partition_and_curve_matches() {
        let n = c17();
        let faults = FaultList::collapsed(&n);
        let order: Vec<FaultId> = faults.ids().collect();
        let result = TestGenerator::for_circuit(&compile(&n), &faults, TestGenConfig::default()).run(&order);
        let total: u32 = result.new_detections.iter().sum();
        assert_eq!(total as usize, result.num_detected());
        let curve = result.coverage_curve();
        assert_eq!(curve.final_detected(), result.num_detected());
        assert_eq!(curve.num_tests(), result.num_tests());
    }

    #[test]
    fn order_affects_test_count_but_not_coverage() {
        let n = c17();
        let faults = FaultList::collapsed(&n);
        let fwd: Vec<FaultId> = faults.ids().collect();
        let rev: Vec<FaultId> = fwd.iter().rev().copied().collect();
        let cfg = TestGenConfig::default();
        let r1 = TestGenerator::for_circuit(&compile(&n), &faults, cfg).run(&fwd);
        let r2 = TestGenerator::for_circuit(&compile(&n), &faults, cfg).run(&rev);
        assert_eq!(r1.num_detected(), r2.num_detected());
        // Both orders fully cover c17 (sanity; counts may differ).
        assert_eq!(r1.num_detected(), faults.len());
    }

    #[test]
    fn redundant_faults_are_reported() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nna = NOT(a)\nt = AND(a, na)\ny = OR(b, t)\n";
        let n = bench_format::parse(src, "red").unwrap();
        let faults = FaultList::collapsed(&n);
        let order: Vec<FaultId> = faults.ids().collect();
        let result = TestGenerator::for_circuit(&compile(&n), &faults, TestGenConfig::default()).run(&order);
        assert!(result.num_redundant() > 0, "t s-a-0 must be redundant");
        assert_eq!(result.num_aborted(), 0);
        // All non-redundant faults are detected.
        assert_eq!(
            result.num_detected() + result.num_redundant(),
            faults.len()
        );
    }

    #[test]
    fn generated_tests_agree_with_batch_fault_simulation() {
        let n = c17();
        let faults = FaultList::collapsed(&n);
        let order: Vec<FaultId> = faults.ids().collect();
        let result = TestGenerator::for_circuit(&compile(&n), &faults, TestGenConfig::default()).run(&order);
        // Re-simulate the full test set with dropping: the coverage curve
        // must match the driver's bookkeeping.
        let set = PatternSet::from_patterns(n.num_inputs(), result.tests.iter());
        let sim = FaultSimulator::for_circuit(&compile(&n), &faults);
        let drop = sim.with_dropping(&set);
        let resim = CoverageCurve::from_first_detection(
            &drop.first_detection,
            set.len(),
            faults.len(),
        );
        let own = result.coverage_curve();
        for i in 0..=set.len() {
            assert_eq!(own.cumulative(i), resim.cumulative(i), "test {i}");
        }
    }

    #[test]
    fn partial_order_targets_only_listed_faults() {
        let n = c17();
        let faults = FaultList::collapsed(&n);
        let order: Vec<FaultId> = faults.ids().take(3).collect();
        let result = TestGenerator::for_circuit(&compile(&n), &faults, TestGenConfig::default()).run(&order);
        assert!(result.num_tests() <= 3);
        for (i, &t) in result.targets.iter().enumerate() {
            assert!(order.contains(&t), "test {i} targeted unlisted fault");
        }
    }

    #[test]
    #[should_panic(expected = "duplicated")]
    fn duplicate_order_entries_panic() {
        let n = c17();
        let faults = FaultList::collapsed(&n);
        let id = faults.ids().next().unwrap();
        let _ = TestGenerator::for_circuit(&compile(&n), &faults, TestGenConfig::default()).run(&[id, id]);
    }

    #[test]
    fn deterministic_given_same_config() {
        let n = c17();
        let faults = FaultList::collapsed(&n);
        let order: Vec<FaultId> = faults.ids().collect();
        let cfg = TestGenConfig::default();
        let r1 = TestGenerator::for_circuit(&compile(&n), &faults, cfg).run(&order);
        let r2 = TestGenerator::for_circuit(&compile(&n), &faults, cfg).run(&order);
        assert_eq!(r1.tests, r2.tests);
        assert_eq!(r1.new_detections, r2.new_detections);
    }

    #[test]
    fn random_phase_bookkeeping_is_consistent() {
        let n = c17();
        let faults = FaultList::collapsed(&n);
        let order: Vec<FaultId> = faults.ids().collect();
        let warmup = PatternSet::random(5, 16, 2);
        let gen = TestGenerator::for_circuit(&compile(&n), &faults, TestGenConfig::default());
        let result = gen.run_with_random_phase(&order, &warmup);
        assert_eq!(result.num_detected(), faults.len());
        let total: u32 = result.new_detections.iter().sum();
        assert_eq!(total as usize, result.num_detected());
        assert_eq!(result.tests.len(), result.targets.len());
        assert_eq!(result.tests.len(), result.new_detections.len());
        // Re-simulating the stitched test set reproduces the curve.
        let set = PatternSet::from_patterns(n.num_inputs(), result.tests.iter());
        let sim = FaultSimulator::for_circuit(&compile(&n), &faults);
        let drop = sim.with_dropping(&set);
        let resim = CoverageCurve::from_first_detection(
            &drop.first_detection,
            set.len(),
            faults.len(),
        );
        let own = result.coverage_curve();
        for i in 0..=set.len() {
            assert_eq!(own.cumulative(i), resim.cumulative(i), "test {i}");
        }
    }

    #[test]
    fn random_phase_with_empty_warmup_equals_plain_run() {
        let n = c17();
        let faults = FaultList::collapsed(&n);
        let order: Vec<FaultId> = faults.ids().collect();
        let gen = TestGenerator::for_circuit(&compile(&n), &faults, TestGenConfig::default());
        let plain = gen.run(&order);
        let phased = gen.run_with_random_phase(&order, &PatternSet::new(5));
        assert_eq!(plain.tests, phased.tests);
        assert_eq!(plain.new_detections, phased.new_detections);
    }

    #[test]
    fn random_phase_usually_needs_more_tests() {
        // The paper's argument: admitting random vectors first inflates
        // the test set relative to pure deterministic generation. On a
        // circuit as small as c17 the effect is noisy per seed, so
        // assert it as the statistic it is: over a spread of warmup
        // seeds, the phased run matches or exceeds the plain test count
        // in a clear majority of cases.
        let n = c17();
        let faults = FaultList::collapsed(&n);
        let order: Vec<FaultId> = faults.ids().collect();
        let gen = TestGenerator::for_circuit(&compile(&n), &faults, TestGenConfig::default());
        let plain = gen.run(&order).num_tests();
        let seeds = 20u64;
        let at_least_as_many = (0..seeds)
            .filter(|&seed| {
                let warmup = PatternSet::random(5, 32, seed);
                gen.run_with_random_phase(&order, &warmup).num_tests() >= plain
            })
            .count();
        assert!(
            at_least_as_many >= seeds as usize * 2 / 3,
            "random phase inflated the test set in only {at_least_as_many}/{seeds} runs"
        );
    }

    #[test]
    fn batched_and_scalar_drop_loops_are_bit_identical() {
        let n = c17();
        let circuit = compile(&n);
        let faults = FaultList::collapsed(&n);
        let fwd: Vec<FaultId> = faults.ids().collect();
        let rev: Vec<FaultId> = fwd.iter().rev().copied().collect();
        for order in [&fwd, &rev] {
            let batched = TestGenerator::for_circuit(
                &circuit,
                &faults,
                TestGenConfig {
                    drop_loop: DropLoopKind::Batched,
                    ..TestGenConfig::default()
                },
            )
            .run(order);
            let scalar = TestGenerator::for_circuit(
                &circuit,
                &faults,
                TestGenConfig {
                    drop_loop: DropLoopKind::Scalar,
                    ..TestGenConfig::default()
                },
            )
            .run(order);
            assert_eq!(batched, scalar);
        }
    }

    #[test]
    fn batched_loop_is_width_and_thread_invariant() {
        let n = c17();
        let circuit = compile(&n);
        let faults = FaultList::collapsed(&n);
        let order: Vec<FaultId> = faults.ids().collect();
        let scalar = TestGenerator::for_circuit(
            &circuit,
            &faults,
            TestGenConfig {
                drop_loop: DropLoopKind::Scalar,
                ..TestGenConfig::default()
            },
        )
        .run(&order);
        for width in SimWidth::ALL {
            for threads in [1usize, 2, 4] {
                let batched = TestGenerator::for_circuit(
                    &circuit,
                    &faults,
                    TestGenConfig {
                        drop_loop: DropLoopKind::Batched,
                        width,
                        threads,
                        ..TestGenConfig::default()
                    },
                )
                .run(&order);
                assert_eq!(batched, scalar, "width {width} threads {threads}");
            }
        }
    }

    #[test]
    fn batched_and_scalar_random_phase_are_bit_identical() {
        let n = c17();
        let circuit = compile(&n);
        let faults = FaultList::collapsed(&n);
        let order: Vec<FaultId> = faults.ids().collect();
        for seed in [0u64, 7, 19] {
            let warmup = PatternSet::random(5, 100, seed);
            let batched = TestGenerator::for_circuit(
                &circuit,
                &faults,
                TestGenConfig {
                    drop_loop: DropLoopKind::Batched,
                    ..TestGenConfig::default()
                },
            )
            .run_with_random_phase(&order, &warmup);
            let scalar = TestGenerator::for_circuit(
                &circuit,
                &faults,
                TestGenConfig {
                    drop_loop: DropLoopKind::Scalar,
                    ..TestGenConfig::default()
                },
            )
            .run_with_random_phase(&order, &warmup);
            assert_eq!(batched, scalar, "seed {seed}");
        }
    }

    #[test]
    fn fill_strategy_changes_results_reproducibly() {
        let n = c17();
        let faults = FaultList::collapsed(&n);
        let order: Vec<FaultId> = faults.ids().collect();
        let zeros = TestGenConfig {
            fill: FillStrategy::Zeros,
            ..TestGenConfig::default()
        };
        let r1 = TestGenerator::for_circuit(&compile(&n), &faults, zeros).run(&order);
        let r2 = TestGenerator::for_circuit(&compile(&n), &faults, zeros).run(&order);
        assert_eq!(r1.tests, r2.tests);
        // Coverage still complete with any fill.
        assert_eq!(r1.num_detected(), faults.len());
    }
}
