//! Speculative multi-target ATPG with a deterministic first-win commit.
//!
//! `run_speculative` is the batched drop loop of
//! [`TestGenerator`] with the PODEM calls hoisted
//! onto a worker pool: `atpg_threads - 1` workers race ahead of the
//! commit position, each running PODEM on upcoming targets of the ADI
//! order with its **own** [`Podem`] (and event engine) over the shared
//! compiled circuit, while the calling thread replays the sequential
//! loop's bookkeeping — drop-session pushes, flushes, classifications —
//! strictly in ordering position.
//!
//! # The first-win commit rule
//!
//! A speculated result for ordering position `p` is **consumed only if
//! its target is still live when the committer reaches `p`**: not yet
//! classified (`status` is `None`) and not covered by a test pending in
//! the drop session. Otherwise the committer skips the position exactly
//! as the sequential loop would have, and the speculated result — if a
//! worker produced one — is discarded and counted in
//! [`PodemStats::wasted_speculations`].
//!
//! # Why the output is bit-identical to the sequential loop
//!
//! The parallel loop produces the same tests, classifications, coverage
//! curve, and deterministic PODEM counters as
//! `TestGenConfig { atpg_threads: 1, .. }` for every seed, width, and
//! thread count, because each of the three inputs to every commit
//! decision is history-independent or committer-owned:
//!
//! 1. **Per-target PODEM purity.** `Podem::generate` starts from the
//!    all-X quiescent baseline and the event engine fully retracts its
//!    trail when a target ends, so a target's outcome *and its stats
//!    delta* are pure functions of `(circuit, fault, config)` — which
//!    worker runs it, and after whatever target history, cannot matter.
//!    (The one cross-target cache, the X-path witness, only short-cuts
//!    a walk whose boolean answer is unchanged and whose cost is not a
//!    `PodemStats` counter.)
//! 2. **Committer-owned skip state.** Both skip checks — `status` and
//!    the drop session's pending-cover word — read state mutated only
//!    by the committer itself, in commit order. Workers never touch it.
//! 3. **Commit-time fill.** Random fill is seeded by the *committed*
//!    test index (`fill_seed + test_index`), so cubes are filled at
//!    commit, never at speculation.
//!
//! The shared `resolved` flags are pruning **hints only** (a worker
//! skips generating for a fault the committer has already classified);
//! the committer re-checks its own state before consuming anything, so
//! a stale or missing hint affects wall clock and the waste counter,
//! never the output. `wasted_speculations`, the per-phase wall-clock
//! timings, and nothing else depend on thread timing; both are excluded
//! from [`TestGenResult`] equality.
//!
//! # The adaptive claim window
//!
//! `TestGenConfig::speculation_depth` is a **cap**, not a fixed window:
//! the committer tracks whether recent positions consumed their
//! speculation or skipped past a claimed one, and resizes the live
//! claim window within `[1, speculation_depth]` — halving it after a
//! streak of wasted claims (dense accidental detection: tests keep
//! covering upcoming targets first), growing it back multiplicatively
//! after a streak of consumed ones (starved workers). The window is
//! advisory in exactly the sense the `resolved` hints are: it bounds
//! *what workers claim next*, never what the committer does with a
//! settled slot, so any window trajectory — including a different one
//! on every run — leaves the committed output bit-identical. The
//! equivalence lattice in `tests/parallel_atpg_equivalence.rs` pins
//! this across depth caps on both sides of the adaptation range.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use adi_netlist::fault::FaultId;
use adi_sim::DropSession;

use crate::testgen::{apply_flush, finalize_status, PhaseTimings, TestGenResult, TestGenerator};
use crate::{FaultStatus, Podem, PodemOutcome, PodemStats, SatResolved};

/// One ordering position's speculation slot.
enum Slot {
    /// Not yet produced (unclaimed, or a worker is running it).
    Pending,
    /// A worker finished PODEM: the outcome plus the worker's stats
    /// delta for exactly this target.
    Ready(PodemOutcome, PodemStats),
    /// A worker saw the target's resolved hint and skipped it.
    Skipped,
    /// The committer took the result.
    Consumed,
}

/// Mutex-guarded scheduler state shared by the committer and workers.
struct SpecState {
    /// Next unclaimed ordering position.
    next_claim: usize,
    /// The position the committer is currently at; claims are limited
    /// to `commit_pos + depth` (the speculation window).
    commit_pos: usize,
    /// Per-position speculation slots.
    slots: Vec<Slot>,
    /// Shutdown flag (set once the commit loop has finished).
    stop: bool,
}

struct Shared {
    state: Mutex<SpecState>,
    /// Signaled when the claim window may have opened (commit advance,
    /// shutdown).
    work: Condvar,
    /// Signaled when a slot transitions out of `Pending`.
    done: Condvar,
}

/// Field-wise `after - before` of two cumulative stats snapshots.
fn stats_delta(after: PodemStats, before: PodemStats) -> PodemStats {
    PodemStats {
        targets: after.targets - before.targets,
        tests: after.tests - before.tests,
        untestable: after.untestable - before.untestable,
        aborted: after.aborted - before.aborted,
        backtracks: after.backtracks - before.backtracks,
        decisions: after.decisions - before.decisions,
        sim_events: after.sim_events - before.sim_events,
        sim_updates: after.sim_updates - before.sim_updates,
        wasted_speculations: 0,
        sat_resolved: SatResolved {
            redundant: after.sat_resolved.redundant - before.sat_resolved.redundant,
            testable: after.sat_resolved.testable - before.sat_resolved.testable,
            undecided: after.sat_resolved.undecided - before.sat_resolved.undecided,
        },
    }
}

/// Field-wise accumulation of a per-target delta.
fn stats_add(acc: &mut PodemStats, d: PodemStats) {
    acc.targets += d.targets;
    acc.tests += d.tests;
    acc.untestable += d.untestable;
    acc.aborted += d.aborted;
    acc.backtracks += d.backtracks;
    acc.decisions += d.decisions;
    acc.sim_events += d.sim_events;
    acc.sim_updates += d.sim_updates;
    acc.sat_resolved.redundant += d.sat_resolved.redundant;
    acc.sat_resolved.testable += d.sat_resolved.testable;
    acc.sat_resolved.undecided += d.sat_resolved.undecided;
}

/// The speculative batched run (see the [module docs](self) for the
/// commit rule and the determinism argument). Called by
/// `TestGenerator::run_phase_batched` when
/// `TestGenConfig::atpg_threads > 1`.
pub(crate) fn run_speculative<const N: usize>(
    g: &TestGenerator<'_>,
    order: &[FaultId],
    predropped: &[bool],
) -> TestGenResult {
    let n_faults = g.faults.len();
    assert_eq!(predropped.len(), n_faults);
    g.validate_order(order);

    let workers = (g.config.atpg_threads - 1).max(1);
    let depth = g.config.speculation_depth.max(1);
    // Live claim window, committer-adjusted within `[1, depth]`
    // (see the module docs). Advisory: workers read it when claiming.
    let window = AtomicUsize::new(depth);

    let shared = Shared {
        state: Mutex::new(SpecState {
            next_claim: 0,
            commit_pos: 0,
            slots: order.iter().map(|_| Slot::Pending).collect(),
            stop: false,
        }),
        work: Condvar::new(),
        done: Condvar::new(),
    };
    let resolved: Vec<AtomicBool> = (0..n_faults).map(|_| AtomicBool::new(false)).collect();
    // Total speculative generates and their summed wall clock, wasted
    // ones included (the committer's rare fallback generates also land
    // here so `generate_ns` covers every PODEM call of the run).
    let speculated = AtomicU64::new(0);
    let generate_ns = AtomicU64::new(0);

    let mut committed = None;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| worker_loop(g, order, &shared, &resolved, &speculated, &generate_ns, &window));
        }
        committed = Some(commit_loop::<N>(
            g, order, predropped, &shared, &resolved, &generate_ns, &window, depth,
        ));
        shared.state.lock().expect("scheduler lock poisoned").stop = true;
        shared.work.notify_all();
    });
    // All workers have joined: the speculation counters are final.
    let (tests, targets, new_detections, status, mut stats, mut timing, consumed) =
        committed.expect("commit loop ran");
    stats.wasted_speculations = speculated.load(Ordering::Relaxed) - consumed;
    timing.generate_ns = generate_ns.load(Ordering::Relaxed);
    if adi_obs::is_enabled() {
        let r = adi_obs::registry();
        r.counter("adi_speculation_claimed_total").add(speculated.load(Ordering::Relaxed));
        r.counter("adi_speculation_committed_total").add(consumed);
        r.counter("adi_speculation_wasted_total").add(stats.wasted_speculations);
    }

    TestGenResult {
        tests,
        targets,
        new_detections,
        status: finalize_status(status),
        podem_stats: stats,
        timing,
    }
}

/// A speculation worker: claim the next ordering position inside the
/// window, run PODEM on it (unless its resolved hint is set), publish
/// the slot, repeat until shutdown.
fn worker_loop(
    g: &TestGenerator<'_>,
    order: &[FaultId],
    shared: &Shared,
    resolved: &[AtomicBool],
    speculated: &AtomicU64,
    generate_ns: &AtomicU64,
    window: &AtomicUsize,
) {
    let mut podem = Podem::for_circuit(&g.circuit, g.config.podem);
    loop {
        let pos = {
            let mut s = shared.state.lock().expect("scheduler lock poisoned");
            loop {
                if s.stop {
                    return;
                }
                let w = window.load(Ordering::Relaxed).max(1);
                if s.next_claim < order.len() && s.next_claim < s.commit_pos.saturating_add(w) {
                    break;
                }
                s = shared.work.wait(s).expect("scheduler lock poisoned");
            }
            let p = s.next_claim;
            s.next_claim += 1;
            p
        };
        let target = order[pos];
        if resolved[target.index()].load(Ordering::Relaxed) {
            // The committer already classified this fault; the slot can
            // never be consumed (status never reverts to unclassified).
            shared.state.lock().expect("scheduler lock poisoned").slots[pos] = Slot::Skipped;
            shared.done.notify_all();
            continue;
        }
        let before = podem.stats();
        let t0 = Instant::now();
        let outcome = {
            static SPAN_SPECULATE: adi_obs::SpanSite = adi_obs::SpanSite::new("atpg.speculate_podem");
            let _span = SPAN_SPECULATE.enter();
            podem.generate(g.faults.fault(target))
        };
        generate_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        speculated.fetch_add(1, Ordering::Relaxed);
        let delta = stats_delta(podem.stats(), before);
        shared.state.lock().expect("scheduler lock poisoned").slots[pos] =
            Slot::Ready(outcome, delta);
        shared.done.notify_all();
    }
}

/// Everything the commit loop hands back to `run_speculative`: the
/// result fields under construction plus the consumed-speculation count.
type Committed = (
    Vec<adi_sim::Pattern>,
    Vec<FaultId>,
    Vec<u32>,
    Vec<Option<FaultStatus>>,
    PodemStats,
    PhaseTimings,
    u64,
);

/// One committer-side adjustment of the adaptive claim window (see the
/// module docs). `useful` means the position consumed its speculation;
/// `!useful` means the committer skipped past a claimed one. Streaks of
/// waste halve the window, streaks of consumption regrow it toward the
/// `cap`. Advisory only: this changes what workers claim, never what
/// the committer commits.
fn adapt_window(window: &AtomicUsize, cap: usize, streak: &mut i64, useful: bool) {
    if useful {
        *streak = (*streak).max(0) + 1;
        if *streak >= 4 {
            *streak = 0;
            let w = window.load(Ordering::Relaxed);
            if w < cap {
                window.store((w + (w / 2).max(1)).min(cap), Ordering::Relaxed);
            }
        }
    } else {
        *streak = (*streak).min(0) - 1;
        if *streak <= -2 {
            *streak = 0;
            let w = window.load(Ordering::Relaxed);
            if w > 1 {
                window.store(w / 2, Ordering::Relaxed);
            }
        }
    }
}

/// The committer: replays the sequential batched loop in ordering
/// position, consuming speculated outcomes under the first-win rule.
#[allow(clippy::too_many_arguments)]
fn commit_loop<const N: usize>(
    g: &TestGenerator<'_>,
    order: &[FaultId],
    predropped: &[bool],
    shared: &Shared,
    resolved: &[AtomicBool],
    generate_ns: &AtomicU64,
    window: &AtomicUsize,
    depth: usize,
) -> Committed {
    let n_faults = g.faults.len();
    let mut session = DropSession::<N>::for_circuit(&g.circuit, g.faults)
        .with_threads(g.config.threads.max(1));
    let mut status: Vec<Option<FaultStatus>> = vec![None; n_faults];
    let mut active: Vec<FaultId> = g
        .faults
        .ids()
        .filter(|id| !predropped[id.index()])
        .collect();
    let mut tests: Vec<adi_sim::Pattern> = Vec::new();
    let mut targets: Vec<FaultId> = Vec::new();
    let mut new_detections: Vec<u32> = Vec::new();
    let mut timing = PhaseTimings::default();
    let mut stats = PodemStats::default();
    let mut consumed: u64 = 0;
    // Fallback generator for the defensive Skipped-slot path below;
    // never built in a correct run.
    let mut fallback: Option<Podem> = None;
    // Adaptive-window streak (see `adapt_window`).
    let mut streak: i64 = 0;

    for (pos, &target) in order.iter().enumerate() {
        // Advance the window and note whether this position was already
        // claimed by a worker — if the committer then skips it, that
        // claim was wasted and the adaptive window should hear about it.
        let claimed = {
            let mut s = shared.state.lock().expect("scheduler lock poisoned");
            s.commit_pos = pos;
            pos < s.next_claim && !matches!(s.slots[pos], Slot::Skipped)
        };
        shared.work.notify_all();

        if status[target.index()].is_some() {
            // Classified by an earlier flush (or as redundant/aborted);
            // make sure in-flight workers see it.
            resolved[target.index()].store(true, Ordering::Relaxed);
            if claimed {
                adapt_window(window, depth, &mut streak, false);
            }
            continue;
        }
        let t0 = Instant::now();
        let covered = !session.pending_detections(target).is_zero();
        timing.drop_ns += t0.elapsed().as_nanos() as u64;
        if covered {
            // A pending test covers it: the flush that drains the block
            // is guaranteed to classify it, so the hint is safe to set
            // now.
            resolved[target.index()].store(true, Ordering::Relaxed);
            if claimed {
                adapt_window(window, depth, &mut streak, false);
            }
            continue;
        }

        // First win: the target is live at commit time, so this
        // position's speculation is the one that counts.
        let wait0 = Instant::now();
        let slot = {
            let mut s = shared.state.lock().expect("scheduler lock poisoned");
            loop {
                match std::mem::replace(&mut s.slots[pos], Slot::Consumed) {
                    Slot::Pending => {
                        s.slots[pos] = Slot::Pending;
                        s = shared.done.wait(s).expect("scheduler lock poisoned");
                    }
                    other => break other,
                }
            }
        };
        timing.commit_wait_ns += wait0.elapsed().as_nanos() as u64;
        let (outcome, delta) = match slot {
            Slot::Ready(outcome, delta) => {
                consumed += 1;
                adapt_window(window, depth, &mut streak, true);
                (outcome, delta)
            }
            Slot::Pending => unreachable!("wait loop only exits on a settled slot"),
            Slot::Skipped | Slot::Consumed => {
                // Defensively unreachable: a worker only skips on a
                // resolved hint, hints are only set for classified or
                // pending-covered faults, and neither state reverts.
                // Generating here (in commit order) preserves the
                // deterministic output even if a hint were ever wrong.
                debug_assert!(false, "speculation slot skipped for a live target");
                let podem = fallback
                    .get_or_insert_with(|| Podem::for_circuit(&g.circuit, g.config.podem));
                let before = podem.stats();
                let t0 = Instant::now();
                let outcome = podem.generate(g.faults.fault(target));
                generate_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                (outcome, stats_delta(podem.stats(), before))
            }
        };
        stats_add(&mut stats, delta);

        match outcome {
            PodemOutcome::Test(cube) => {
                let test_index = tests.len() as u32;
                let seed = g.config.fill_seed.wrapping_add(u64::from(test_index));
                let pattern = g.config.fill.fill(&cube, seed);
                let t0 = Instant::now();
                session.push(&pattern);
                debug_assert!(
                    session.pending_detections(target).bit(session.pending() - 1),
                    "speculated test {pattern} does not detect its target"
                );
                tests.push(pattern);
                targets.push(target);
                if session.is_full() {
                    apply_flush(
                        &mut session,
                        &targets,
                        &mut status,
                        &mut active,
                        &mut new_detections,
                        Some(resolved),
                    );
                }
                timing.drop_ns += t0.elapsed().as_nanos() as u64;
            }
            PodemOutcome::Untestable => {
                status[target.index()] = Some(FaultStatus::Redundant);
                resolved[target.index()].store(true, Ordering::Relaxed);
                active.retain(|&id| id != target);
            }
            PodemOutcome::Aborted => {
                status[target.index()] = Some(FaultStatus::Aborted);
                resolved[target.index()].store(true, Ordering::Relaxed);
                active.retain(|&id| id != target);
            }
        }
    }
    let t0 = Instant::now();
    apply_flush(
        &mut session,
        &targets,
        &mut status,
        &mut active,
        &mut new_detections,
        Some(resolved),
    );
    timing.drop_ns += t0.elapsed().as_nanos() as u64;

    (tests, targets, new_detections, status, stats, timing, consumed)
}

#[cfg(test)]
mod tests {
    use adi_netlist::fault::FaultList;
    use adi_netlist::{bench_format, CompiledCircuit};
    use adi_sim::SimWidth;

    use crate::{DropLoopKind, TestGenConfig, TestGenerator};

    const C17: &str = "
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

    #[test]
    fn speculative_loop_matches_sequential_exactly() {
        let n = bench_format::parse(C17, "c17").unwrap();
        let circuit = CompiledCircuit::compile(n);
        let faults = FaultList::collapsed(circuit.netlist());
        let order: Vec<_> = faults.ids().collect();
        let sequential = TestGenerator::for_circuit(
            &circuit,
            &faults,
            TestGenConfig {
                atpg_threads: 1,
                ..TestGenConfig::default()
            },
        )
        .run(&order);
        for atpg_threads in [2usize, 3, 5] {
            for depth in [1usize, 2, 16] {
                let speculative = TestGenerator::for_circuit(
                    &circuit,
                    &faults,
                    TestGenConfig {
                        atpg_threads,
                        speculation_depth: depth,
                        ..TestGenConfig::default()
                    },
                )
                .run(&order);
                // Whole-result equality (tests, classifications, curve,
                // deterministic stats) — `wasted_speculations` and the
                // timings are excluded by `TestGenResult`'s `PartialEq`.
                assert_eq!(speculative, sequential, "threads {atpg_threads} depth {depth}");
                assert_eq!(
                    speculative.coverage_curve(),
                    sequential.coverage_curve(),
                    "threads {atpg_threads} depth {depth}"
                );
            }
        }
    }

    #[test]
    fn speculation_requires_the_batched_loop() {
        // The scalar oracle loop ignores `atpg_threads` entirely.
        let n = bench_format::parse(C17, "c17").unwrap();
        let circuit = CompiledCircuit::compile(n);
        let faults = FaultList::collapsed(circuit.netlist());
        let order: Vec<_> = faults.ids().collect();
        let mk = |atpg_threads| {
            TestGenerator::for_circuit(
                &circuit,
                &faults,
                TestGenConfig {
                    drop_loop: DropLoopKind::Scalar,
                    atpg_threads,
                    ..TestGenConfig::default()
                },
            )
            .run(&order)
        };
        let seq = mk(1);
        let spec = mk(4);
        assert_eq!(seq, spec);
        assert_eq!(spec.podem_stats.wasted_speculations, 0);
    }

    #[test]
    fn narrow_width_and_deep_window_still_agree() {
        // W1 blocks flush every 64 tests, maximizing commit/flush
        // interleaving against a deep speculation window.
        let n = bench_format::parse(C17, "c17").unwrap();
        let circuit = CompiledCircuit::compile(n);
        let faults = FaultList::collapsed(circuit.netlist());
        let order: Vec<_> = faults.ids().collect();
        let cfg = |atpg_threads| TestGenConfig {
            width: SimWidth::W1,
            atpg_threads,
            speculation_depth: 64,
            ..TestGenConfig::default()
        };
        let seq = TestGenerator::for_circuit(&circuit, &faults, cfg(1)).run(&order);
        let spec = TestGenerator::for_circuit(&circuit, &faults, cfg(4)).run(&order);
        assert_eq!(seq, spec);
    }
}
