//! PODEM-based automatic test pattern generation (ATPG).
//!
//! This crate implements the deterministic test generator that the ADI
//! reproduction drives with differently ordered fault lists:
//!
//! * [`value`] — Kleene 3-valued logic ([`T3`]) and the D-calculus view
//!   used by PODEM (separate good-machine and faulty-machine 3-valued
//!   simulations).
//! * [`Scoap`] — SCOAP controllability/observability measures guiding the
//!   PODEM backtrace.
//! * [`Podem`] — the path-oriented decision making test generator with
//!   X-path checking and a backtrack limit, returning a [`TestCube`]
//!   (possibly partial input assignment), an untestability proof, or an
//!   abort. Two bit-identical simulation backends are selected by
//!   [`PodemEngine`]: the default incremental event-driven evaluator
//!   over the compiled position space, and the classic full-netlist
//!   resimulation kept as the differential oracle.
//! * [`FillStrategy`] — completion of unspecified cube inputs.
//! * [`testgen`] — the ordered-fault-list driver with fault dropping:
//!   exactly the "test generation procedure without dynamic compaction
//!   heuristics" of the paper's Section 4.
//! * [`speculate`] — the speculative multi-target parallel form of that
//!   driver ([`TestGenConfig::atpg_threads`] `> 1`): a worker pool runs
//!   PODEM ahead of the commit position and a deterministic first-win
//!   committer keeps the output bit-identical to the sequential loop.
//! * [`cnf`] — the formal layer: Tseitin encoding of the compiled
//!   position space, cone-restricted fault miters decided by the
//!   vendored CDCL solver (redundancy proofs for the faults PODEM
//!   aborts on, selected by [`SatFallback`]), and bounded two-netlist
//!   equivalence checking for the service's `equiv` endpoint.
//!
//! # Examples
//!
//! Generate a test for a specific stuck-at fault:
//!
//! ```
//! use adi_netlist::{bench_format, fault::Fault};
//! use adi_atpg::{Podem, PodemConfig, PodemOutcome};
//!
//! # fn main() -> Result<(), adi_netlist::NetlistError> {
//! let n = bench_format::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and2")?;
//! let y = n.find_node("y").unwrap();
//! let fault = Fault::stem_at(y, false); // y stuck-at-0
//! let mut podem = Podem::new(&n, PodemConfig::default());
//! match podem.generate(fault) {
//!     PodemOutcome::Test(cube) => {
//!         // Detecting y/0 requires a = b = 1.
//!         assert_eq!(cube.get(0), Some(true));
//!         assert_eq!(cube.get(1), Some(true));
//!     }
//!     other => panic!("expected a test, got {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnf;
mod cube;
mod fill;
mod podem;
pub mod speculate;
pub mod testgen;
pub mod value;

pub use cnf::{EquivError, EquivVerdict, FaultVerdict};
pub use cube::TestCube;
pub use fill::FillStrategy;
pub use podem::{Podem, PodemConfig, PodemEngine, PodemOutcome, PodemStats, SatFallback, SatResolved};
pub use testgen::{
    DropLoopKind, FaultStatus, PhaseTimings, TestGenConfig, TestGenResult, TestGenSummary,
    TestGenerator,
};
pub use value::T3;

/// SCOAP testability measures (re-export; the type now lives in
/// `adi-netlist` so [`adi_netlist::CompiledCircuit`] can cache it).
pub use adi_netlist::Scoap;
