//! Completion of unspecified test-cube inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use adi_sim::Pattern;

use crate::TestCube;

/// How the X inputs of a [`TestCube`] are completed into a full
/// [`Pattern`].
///
/// Random fill is the default used by the paper-style experiments: filling
/// unspecified inputs randomly maximizes the chance of accidental
/// detections without biasing the targeted fault.
///
/// # Examples
///
/// ```
/// use adi_atpg::{FillStrategy, TestCube};
///
/// let cube = TestCube::from_options(vec![Some(true), None, None]);
/// let p = FillStrategy::Zeros.fill(&cube, 0);
/// assert_eq!(p.as_slice(), &[true, false, false]);
/// let q = FillStrategy::Random.fill(&cube, 42);
/// assert!(cube.covers(&q));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum FillStrategy {
    /// Fill X inputs with seeded pseudo-random values.
    #[default]
    Random,
    /// Fill X inputs with 0.
    Zeros,
    /// Fill X inputs with 1.
    Ones,
    /// Fill X inputs alternating 0,1,0,1,… in input order.
    Alternating,
}

impl FillStrategy {
    /// Completes `cube` into a full pattern. For [`FillStrategy::Random`]
    /// the result is a deterministic function of `(cube, seed)`.
    pub fn fill(self, cube: &TestCube, seed: u64) -> Pattern {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut alt = false;
        let bits = cube
            .as_slice()
            .iter()
            .map(|&v| match v {
                Some(b) => b,
                None => match self {
                    FillStrategy::Random => rng.gen::<bool>(),
                    FillStrategy::Zeros => false,
                    FillStrategy::Ones => true,
                    FillStrategy::Alternating => {
                        alt = !alt;
                        alt
                    }
                },
            })
            .collect();
        Pattern::new(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube() -> TestCube {
        TestCube::from_options(vec![None, Some(false), None, None, Some(true)])
    }

    #[test]
    fn all_strategies_respect_specified_bits() {
        for s in [
            FillStrategy::Random,
            FillStrategy::Zeros,
            FillStrategy::Ones,
            FillStrategy::Alternating,
        ] {
            let p = s.fill(&cube(), 7);
            assert!(cube().covers(&p), "{s:?}");
            assert!(!p.get(1));
            assert!(p.get(4));
        }
    }

    #[test]
    fn zeros_and_ones() {
        let z = FillStrategy::Zeros.fill(&cube(), 0);
        assert_eq!(z.as_slice(), &[false, false, false, false, true]);
        let o = FillStrategy::Ones.fill(&cube(), 0);
        assert_eq!(o.as_slice(), &[true, false, true, true, true]);
    }

    #[test]
    fn alternating_toggles_in_input_order() {
        let a = FillStrategy::Alternating.fill(&cube(), 0);
        // X positions are 0, 2, 3 -> filled 1, 0, 1? First toggle yields true.
        assert!(a.get(0));
        assert!(!a.get(2));
        assert!(a.get(3));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let p1 = FillStrategy::Random.fill(&cube(), 99);
        let p2 = FillStrategy::Random.fill(&cube(), 99);
        assert_eq!(p1, p2);
    }

    #[test]
    fn random_varies_with_seed() {
        // Over 16 seeds at least two different completions must appear for
        // a cube with 3 free inputs.
        let patterns: std::collections::HashSet<String> = (0..16)
            .map(|s| FillStrategy::Random.fill(&cube(), s).to_string())
            .collect();
        assert!(patterns.len() > 1);
    }
}
