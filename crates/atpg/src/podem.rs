//! PODEM: path-oriented decision making test generation (Goel, 1981).
//!
//! The generator maintains two 3-valued simulations — the good machine and
//! the machine with the target fault injected — and searches over primary
//! input assignments only. Each iteration:
//!
//! 1. If a fault effect (D/D̄) reaches a primary output, a test is found.
//! 2. Otherwise an **objective** is chosen: excite the fault if it is not
//!    yet excited, else advance a D-frontier gate with the lowest SCOAP
//!    observability.
//! 3. **Backtrace** maps the objective to an unassigned primary input,
//!    guided by SCOAP controllability.
//! 4. The input is assigned and both machines are updated. Conflicts
//!    (fault unexcitable, empty D-frontier, or no X-path to any output)
//!    trigger chronological backtracking with a configurable limit.
//!
//! Step 4 is where the two [`PodemEngine`]s differ:
//!
//! * [`PodemEngine::EventDriven`] (the default) runs on
//!   [`adi_sim::t3event::DualMachineSim`], the incremental dual-machine
//!   evaluator over the compiled [`LevelizedCsr`](adi_netlist::LevelizedCsr)
//!   position space: an assignment seeds one event wave from the changed
//!   primary input, a backtrack retracts exactly the nodes the decision
//!   changed (an undo trail, not a resimulation), detection and the
//!   D-frontier are maintained incrementally, and the X-path check walks
//!   only the still-X region pruned by output-cone reachability masks.
//! * `PodemEngine::FullResim` (behind the `oracle` cargo feature, off by
//!   default) re-simulates both machines over the whole netlist in
//!   node-id order on every decision and backtrack — the classic
//!   implementation, kept as the differential-testing oracle. Release
//!   serving binaries build without it; `adi-bench` and the facade's
//!   default features force it on so every differential gate still runs.
//!
//! Both engines produce **bit-identical** outcomes, test cubes, and
//! decision/backtrack counts (asserted by the `podem_equivalence`
//! differential suite and gated in `perf_report`); only the
//! [`PodemStats::sim_events`] / [`PodemStats::sim_updates`] diagnostics
//! reflect the backend actually doing the work.

use adi_netlist::fault::Fault;
#[cfg(feature = "oracle")]
use adi_netlist::fault::FaultSite;
use adi_netlist::{CompiledCircuit, GateKind, Netlist, NodeId};
use adi_sim::t3event::DualMachineSim;

#[cfg(feature = "oracle")]
use crate::value::{eval_t3, eval_t3_branch};
use crate::value::T3;
use crate::{Scoap, TestCube};

/// Which simulation backend drives the PODEM search.
///
/// The full-resimulation oracle is compiled in only with the `oracle`
/// cargo feature (off by default): it exists for differential testing
/// and `perf_report` gating, and release serving binaries ship without
/// it. `adi-bench` forces the feature on; so does the facade's default
/// feature set.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PodemEngine {
    /// Re-simulate both 3-valued machines over the whole netlist after
    /// every decision and backtrack. Kept as the differential-testing
    /// oracle (requires the `oracle` cargo feature).
    #[cfg(feature = "oracle")]
    FullResim,
    /// Incremental event-driven evaluation on the compiled position
    /// space ([`adi_sim::t3event::DualMachineSim`]): events propagate
    /// only from the changed input, and backtracks retract via an undo
    /// trail. Bit-identical to the full-resim oracle, asymptotically
    /// faster.
    #[default]
    EventDriven,
}

impl std::fmt::Display for PodemEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            #[cfg(feature = "oracle")]
            PodemEngine::FullResim => write!(f, "full-resim"),
            PodemEngine::EventDriven => write!(f, "event-driven"),
        }
    }
}

/// When the SAT formal layer ([`crate::cnf`]) backs up the PODEM search.
///
/// Orthogonal to [`PodemEngine`]: the engine picks *how the search
/// simulates*, this picks *what happens when the search gives up*. The
/// SAT resolution is a pure function of `(circuit, fault, conflict
/// limit)` — deterministic across engines, threads, and the speculative
/// pool — so enabling it never breaks an outcome-parity or
/// first-win-determinism contract.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SatFallback {
    /// Never consult the solver; backtrack-limited targets stay
    /// [`PodemOutcome::Aborted`]. The `PodemConfig` default, so direct
    /// [`Podem`] users (and the engine-parity suites) see the raw
    /// search.
    #[default]
    Off,
    /// Every backtrack-aborted target gets a cone-restricted miter
    /// query: UNSAT ⇒ [`PodemOutcome::Untestable`] (a redundancy
    /// proof), SAT ⇒ [`PodemOutcome::Test`] with the model as the
    /// cube, conflict-limit exhaustion ⇒ the abort stands. The
    /// [`TestGenConfig`](crate::TestGenConfig) default.
    AbortedOnly,
}

impl SatFallback {
    /// The wire/CLI label (`"off"` / `"aborted-only"`).
    pub fn label(self) -> &'static str {
        match self {
            SatFallback::Off => "off",
            SatFallback::AbortedOnly => "aborted-only",
        }
    }
}

impl std::fmt::Display for SatFallback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Tuning knobs for [`Podem`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PodemConfig {
    /// Maximum number of backtracks before the target is abandoned as
    /// [`PodemOutcome::Aborted`].
    pub backtrack_limit: u32,
    /// Which simulation backend drives the search
    /// ([`PodemEngine::EventDriven`] by default; both backends are
    /// bit-identical in outcomes, cubes, and decision/backtrack counts).
    pub engine: PodemEngine,
    /// Whether aborted targets are handed to the SAT layer for a
    /// definitive verdict ([`SatFallback::Off`] here; the test-generation
    /// driver defaults it to [`SatFallback::AbortedOnly`]).
    pub sat_fallback: SatFallback,
    /// Conflict budget per SAT fallback query (counts toward
    /// [`SatResolved::undecided`] when exhausted).
    pub sat_conflict_limit: u64,
}

impl Default for PodemConfig {
    /// 1000 backtracks (a generous budget for circuits of the paper's
    /// scale) on the event-driven engine, SAT fallback off.
    fn default() -> Self {
        PodemConfig {
            backtrack_limit: 1000,
            engine: PodemEngine::default(),
            sat_fallback: SatFallback::default(),
            sat_conflict_limit: crate::cnf::DEFAULT_CONFLICT_LIMIT,
        }
    }
}

/// The outcome of one PODEM run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PodemOutcome {
    /// A test cube whose every completion detects the target fault.
    Test(TestCube),
    /// The fault is provably untestable (redundant).
    Untestable,
    /// The backtrack limit was exhausted before a verdict.
    Aborted,
}

impl PodemOutcome {
    /// Returns the test cube if a test was found.
    pub fn test(self) -> Option<TestCube> {
        match self {
            PodemOutcome::Test(c) => Some(c),
            _ => None,
        }
    }
}

/// Counters accumulated across [`Podem::generate`] calls.
///
/// The search counters (`targets` through `decisions`) are part of the
/// engine-parity contract: both [`PodemEngine`]s produce the same values
/// for the same targets. `sim_events` / `sim_updates` are backend
/// diagnostics — they measure how much simulation work the configured
/// engine actually performed and naturally differ between engines.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PodemStats {
    /// Total targets attempted.
    pub targets: u64,
    /// Tests found.
    pub tests: u64,
    /// Untestable proofs.
    pub untestable: u64,
    /// Aborted targets.
    pub aborted: u64,
    /// Total backtracks across all targets.
    pub backtracks: u64,
    /// Total primary-input decisions across all targets.
    pub decisions: u64,
    /// Node evaluations performed by the simulation backend (for the
    /// full-resim oracle, every node of both machines per resimulation;
    /// for the event engine, nodes actually visited by event waves).
    pub sim_events: u64,
    /// Node value changes applied by the event engine's waves (zero for
    /// the full-resim oracle, which overwrites rather than tracks).
    pub sim_updates: u64,
    /// Speculative `generate` runs whose result was discarded by the
    /// first-win committer (always zero for a single [`Podem`]; filled
    /// in by the speculative `TestGenerator` loop). A scheduling
    /// diagnostic, not a search counter: it depends on thread timing
    /// and is excluded from every determinism contract.
    pub wasted_speculations: u64,
    /// How the SAT fallback resolved backtrack-aborted targets
    /// (all-zero when [`SatFallback::Off`]). Deterministic — the
    /// resolution is a pure function of the circuit and fault — but
    /// not a *search* counter: it describes the formal layer, so it is
    /// excluded from [`search_counters`](Self::search_counters).
    pub sat_resolved: SatResolved,
}

/// Breakdown of SAT-fallback resolutions of PODEM aborts.
///
/// `redundant + testable + undecided` equals the number of aborted
/// targets the fallback examined ([`PodemStats::aborted`] when
/// [`SatFallback::AbortedOnly`] is active).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SatResolved {
    /// Miter proved unsatisfiable: the fault is redundant and leaves
    /// every downstream fault list.
    pub redundant: u64,
    /// Miter satisfiable: the model became a test cube on the normal
    /// commit/drop path.
    pub testable: u64,
    /// The solver's conflict limit ran out; the abort stands.
    pub undecided: u64,
}

impl SatResolved {
    /// Total aborted targets the SAT fallback examined.
    pub fn total(self) -> u64 {
        self.redundant + self.testable + self.undecided
    }
}

impl PodemStats {
    /// This stats value with the scheduling-dependent
    /// `wasted_speculations` diagnostic zeroed — the counters that are
    /// bit-identical across every deterministic-equivalent loop
    /// (sequential vs speculative, any width or thread count).
    /// Determinism contracts compare through this accessor.
    pub fn deterministic(self) -> PodemStats {
        PodemStats {
            wasted_speculations: 0,
            ..self
        }
    }

    /// The engine-parity counters as one tuple — everything except the
    /// backend-specific `sim_events`/`sim_updates` diagnostics and the
    /// scheduling-dependent `wasted_speculations` counter. Both
    /// [`PodemEngine`]s must produce equal values here; every parity
    /// gate (the equivalence suite, `perf_report`) compares through this
    /// single accessor so the contract cannot drift.
    pub fn search_counters(self) -> (u64, u64, u64, u64, u64, u64) {
        (
            self.targets,
            self.tests,
            self.untestable,
            self.aborted,
            self.backtracks,
            self.decisions,
        )
    }
}

/// The PODEM test generator, reusable across many target faults of one
/// compiled circuit.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Clone, Debug)]
pub struct Podem {
    circuit: CompiledCircuit,
    config: PodemConfig,
    stats: PodemStats,
    pi_values: Vec<T3>,
    pi_index_of: Vec<usize>,
    /// Full-resim machine state, node-indexed (the oracle backend);
    /// sized on first full-resim target so the event engine never pays
    /// for it.
    #[cfg(feature = "oracle")]
    good: Vec<T3>,
    #[cfg(feature = "oracle")]
    faulty: Vec<T3>,
    /// Event-driven backend, built on first event-driven target so the
    /// full-resim oracle never pays its setup.
    sim: Option<DualMachineSim>,
    /// Scratch for the event path's frontier snapshot.
    frontier_buf: Vec<NodeId>,
}

#[derive(Clone, Copy, Debug)]
struct Decision {
    pi: usize,
    value: bool,
    flipped: bool,
}

impl Podem {
    /// Creates a generator for `netlist`, compiling a private copy
    /// (levelized view, SCOAP measures included).
    ///
    /// Prefer [`Podem::for_circuit`] when a [`CompiledCircuit`] is at
    /// hand — it shares the compilation's cached artifacts instead of
    /// rebuilding them per generator.
    pub fn new(netlist: &Netlist, config: PodemConfig) -> Self {
        Self::for_circuit(&CompiledCircuit::compile(netlist.clone()), config)
    }

    /// Creates a generator over a compiled circuit, sharing its cached
    /// SCOAP measures and levelized view (computed once per compilation,
    /// not per generator).
    pub fn for_circuit(circuit: &CompiledCircuit, config: PodemConfig) -> Self {
        let netlist = circuit.netlist();
        let mut pi_index_of = vec![usize::MAX; netlist.num_nodes()];
        for (i, &pi) in netlist.inputs().iter().enumerate() {
            pi_index_of[pi.index()] = i;
        }
        Podem {
            config,
            stats: PodemStats::default(),
            pi_values: vec![T3::X; netlist.num_inputs()],
            pi_index_of,
            #[cfg(feature = "oracle")]
            good: Vec::new(),
            #[cfg(feature = "oracle")]
            faulty: Vec::new(),
            sim: None,
            frontier_buf: Vec::new(),
            circuit: circuit.clone(),
        }
    }

    /// Cumulative statistics over all `generate` calls.
    pub fn stats(&self) -> PodemStats {
        self.stats
    }

    /// The SCOAP measures used by backtrace (shared from the
    /// compilation; exposed for diagnostics).
    pub fn scoap(&self) -> &Scoap {
        self.circuit.scoap()
    }

    /// The engine driving this generator's simulation.
    pub fn engine(&self) -> PodemEngine {
        self.config.engine
    }

    /// Attempts to generate a test for `fault`.
    ///
    /// # Panics
    ///
    /// Panics if the fault references nodes outside the netlist.
    pub fn generate(&mut self, fault: Fault) -> PodemOutcome {
        self.stats.targets += 1;
        self.pi_values.fill(T3::X);
        let outcome = match self.config.engine {
            #[cfg(feature = "oracle")]
            PodemEngine::FullResim => self.generate_full(fault),
            PodemEngine::EventDriven => self.generate_event(fault),
        };
        match (outcome, self.config.sat_fallback) {
            (PodemOutcome::Aborted, SatFallback::AbortedOnly) => self.resolve_aborted(fault),
            (outcome, _) => outcome,
        }
    }

    /// Hands a backtrack-aborted target to the formal layer. The search
    /// counters (including [`PodemStats::aborted`]) keep describing the
    /// raw PODEM search; the resolution lands in
    /// [`PodemStats::sat_resolved`] and in the returned outcome.
    fn resolve_aborted(&mut self, fault: Fault) -> PodemOutcome {
        match crate::cnf::prove_fault(&self.circuit, fault, self.config.sat_conflict_limit) {
            crate::cnf::FaultVerdict::Testable(cube) => {
                self.stats.sat_resolved.testable += 1;
                PodemOutcome::Test(cube)
            }
            crate::cnf::FaultVerdict::Redundant => {
                self.stats.sat_resolved.redundant += 1;
                PodemOutcome::Untestable
            }
            crate::cnf::FaultVerdict::Undecided => {
                self.stats.sat_resolved.undecided += 1;
                PodemOutcome::Aborted
            }
        }
    }

    // ----- event-driven engine ------------------------------------------

    fn generate_event(&mut self, fault: Fault) -> PodemOutcome {
        let mut sim = self
            .sim
            .take()
            .unwrap_or_else(|| DualMachineSim::for_circuit(&self.circuit));
        let (events_before, updates_before) = sim.counters();
        sim.begin_target(fault);
        let outcome = self.search_event(&mut sim);
        sim.end_target();
        let (events_after, updates_after) = sim.counters();
        self.stats.sim_events += events_after - events_before;
        self.stats.sim_updates += updates_after - updates_before;
        self.sim = Some(sim);
        outcome
    }

    fn search_event(&mut self, sim: &mut DualMachineSim) -> PodemOutcome {
        let circuit = self.circuit.clone();
        let nl = circuit.netlist();
        let view = circuit.view();
        let scoap = circuit.scoap();
        let mut stack: Vec<Decision> = Vec::new();
        let mut backtracks: u32 = 0;

        loop {
            if sim.detected() {
                self.stats.tests += 1;
                return PodemOutcome::Test(TestCube::from_t3(&self.pi_values));
            }

            let (site_pos, needed) = sim.excite_site();
            let site_good = sim.good_at(site_pos);
            let objective = if site_good.is_binary() && site_good != T3::from_bool(needed) {
                None // pinned to the stuck value: the fault is unexcitable
            } else if site_good == T3::X {
                Some((view.node_at(site_pos), needed))
            } else {
                // Excited: the effect must still reach an output through
                // the (incrementally maintained) D-frontier.
                sim.refresh_frontier();
                if sim.frontier_ids().is_empty() || !sim.x_path_exists() {
                    None
                } else {
                    self.frontier_buf.clear();
                    self.frontier_buf.extend_from_slice(sim.frontier_ids());
                    objective_from_frontier(nl, scoap, &mut self.frontier_buf, |n| {
                        sim.good_of(n)
                    })
                }
            };

            if let Some((node, value)) = objective {
                let choice = backtrace_from(
                    nl,
                    scoap,
                    &self.pi_index_of,
                    &self.pi_values,
                    |n| sim.good_of(n),
                    node,
                    value,
                );
                if let Some((pi, v)) = choice {
                    self.stats.decisions += 1;
                    self.pi_values[pi] = T3::from_bool(v);
                    sim.assign(pi, v);
                    stack.push(Decision {
                        pi,
                        value: v,
                        flipped: false,
                    });
                    continue;
                }
            }

            // Conflict (or no objective reachable): chronological backtrack.
            loop {
                match stack.pop() {
                    None => {
                        self.stats.untestable += 1;
                        return PodemOutcome::Untestable;
                    }
                    Some(d) if !d.flipped => {
                        backtracks += 1;
                        self.stats.backtracks += 1;
                        if backtracks > self.config.backtrack_limit {
                            self.stats.aborted += 1;
                            return PodemOutcome::Aborted;
                        }
                        sim.retract_frame();
                        self.pi_values[d.pi] = T3::from_bool(!d.value);
                        sim.assign(d.pi, !d.value);
                        stack.push(Decision {
                            pi: d.pi,
                            value: !d.value,
                            flipped: true,
                        });
                        break;
                    }
                    Some(d) => {
                        self.pi_values[d.pi] = T3::X;
                        sim.retract_frame();
                    }
                }
            }
        }
    }

}

// ----- full-resimulation oracle (the `oracle` cargo feature) ------------

#[cfg(feature = "oracle")]
impl Podem {
    fn generate_full(&mut self, fault: Fault) -> PodemOutcome {
        let circuit = self.circuit.clone();
        let nl = circuit.netlist();
        let scoap = circuit.scoap();
        // Lazily sized: the event engine never pays for the oracle's
        // node-indexed arrays. `simulate` overwrites every entry.
        self.good.resize(nl.num_nodes(), T3::X);
        self.faulty.resize(nl.num_nodes(), T3::X);
        let mut stack: Vec<Decision> = Vec::new();
        let mut backtracks: u32 = 0;

        loop {
            self.simulate(nl, fault);
            if self.detected_full(nl) {
                self.stats.tests += 1;
                return PodemOutcome::Test(TestCube::from_t3(&self.pi_values));
            }

            let objective = if self.conflict_full(nl, fault) {
                None
            } else {
                let (site, needed) = excitation(nl, fault);
                if self.good[site.index()] == T3::X {
                    Some((site, needed))
                } else {
                    let mut frontier = self.d_frontier_full(nl, fault);
                    objective_from_frontier(nl, scoap, &mut frontier, |n| self.good[n.index()])
                }
            };

            if let Some((node, value)) = objective {
                let choice = backtrace_from(
                    nl,
                    scoap,
                    &self.pi_index_of,
                    &self.pi_values,
                    |n| self.good[n.index()],
                    node,
                    value,
                );
                if let Some((pi, v)) = choice {
                    self.stats.decisions += 1;
                    self.pi_values[pi] = T3::from_bool(v);
                    stack.push(Decision {
                        pi,
                        value: v,
                        flipped: false,
                    });
                    continue;
                }
            }

            // Conflict (or no objective reachable): chronological backtrack.
            loop {
                match stack.pop() {
                    None => {
                        self.stats.untestable += 1;
                        return PodemOutcome::Untestable;
                    }
                    Some(d) if !d.flipped => {
                        backtracks += 1;
                        self.stats.backtracks += 1;
                        if backtracks > self.config.backtrack_limit {
                            self.stats.aborted += 1;
                            return PodemOutcome::Aborted;
                        }
                        self.pi_values[d.pi] = T3::from_bool(!d.value);
                        stack.push(Decision {
                            pi: d.pi,
                            value: !d.value,
                            flipped: true,
                        });
                        break;
                    }
                    Some(d) => {
                        self.pi_values[d.pi] = T3::X;
                    }
                }
            }
        }
    }

    /// Re-simulates both machines from the current PI assignment.
    fn simulate(&mut self, nl: &Netlist, fault: Fault) {
        self.stats.sim_events += 2 * nl.num_nodes() as u64;
        for (i, &pi) in nl.inputs().iter().enumerate() {
            self.good[pi.index()] = self.pi_values[i];
            self.faulty[pi.index()] = self.pi_values[i];
        }
        let stuck = T3::from_bool(fault.stuck_value());
        for &node in nl.topo_order() {
            let kind = nl.kind(node);
            if kind != GateKind::Input {
                let gv = eval_t3(kind, nl.fanins(node), |f| self.good[f.index()]);
                self.good[node.index()] = gv;
            }
            // Faulty machine with injection.
            let fv = match fault.site() {
                FaultSite::Stem(n) if n == node => stuck,
                FaultSite::Branch { gate, pin } if gate == node => eval_t3_branch(
                    kind,
                    nl.fanins(node),
                    pin as usize,
                    stuck,
                    |f| self.faulty[f.index()],
                ),
                _ => {
                    if kind == GateKind::Input {
                        self.faulty[node.index()]
                    } else {
                        eval_t3(kind, nl.fanins(node), |f| self.faulty[f.index()])
                    }
                }
            };
            self.faulty[node.index()] = fv;
        }
    }

    /// True if some primary output shows a binary good/faulty discrepancy.
    fn detected_full(&self, nl: &Netlist) -> bool {
        nl.outputs().iter().any(|&o| {
            let g = self.good[o.index()];
            let f = self.faulty[o.index()];
            g.is_binary() && f.is_binary() && g != f
        })
    }

    /// Conflict detection: the current partial assignment can no longer
    /// lead to a test.
    ///
    /// Three-valued simulation is monotone in assignment refinement, so a
    /// binary node value is final: once the excitation line is pinned to
    /// the stuck value, or every effect path is blocked, no completion of
    /// the assignment can detect the fault.
    fn conflict_full(&self, nl: &Netlist, fault: Fault) -> bool {
        let (site, needed) = excitation(nl, fault);
        let gv = self.good[site.index()];
        if gv.is_binary() && gv != T3::from_bool(needed) {
            return true; // fault can never be excited
        }
        if !gv.is_binary() {
            return false; // not excited yet; excitation is the objective
        }
        // Excited: a fault effect exists on the fault line. It must still
        // be able to reach a primary output. A stem fault places D on its
        // node; a branch fault places D on the (un-modelled) branch line,
        // so the reading gate acts as its frontier entry.
        if self.detected_full(nl) {
            return false; // handled by the detection check, defensive
        }
        let frontier = self.d_frontier_full(nl, fault);
        if frontier.is_empty() {
            // For a stem fault the stem itself may still be an observable
            // PO; that case is `detected`. Nothing can advance the effect.
            return true;
        }
        !self.x_path_full(nl, &frontier)
    }

    /// Gates whose output is still undetermined in some machine while at
    /// least one input carries a fault effect. The branch-fault gate
    /// itself belongs to the frontier while the branch line carries D and
    /// the gate output is undetermined.
    fn d_frontier_full(&self, nl: &Netlist, fault: Fault) -> Vec<NodeId> {
        let branch_gate = match fault.site() {
            FaultSite::Branch { gate, .. } => {
                let (driver, needed) = excitation(nl, fault);
                let excited = self.good[driver.index()] == T3::from_bool(needed);
                excited.then_some(gate)
            }
            FaultSite::Stem(_) => None,
        };
        nl.node_ids()
            .filter(|&n| {
                let out_unknown =
                    self.good[n.index()] == T3::X || self.faulty[n.index()] == T3::X;
                if !out_unknown || nl.kind(n) == GateKind::Input {
                    return false;
                }
                if branch_gate == Some(n) {
                    return true;
                }
                nl.fanins(n).iter().any(|&f| {
                    let g = self.good[f.index()];
                    let fv = self.faulty[f.index()];
                    g.is_binary() && fv.is_binary() && g != fv
                })
            })
            .collect()
    }

    /// True if some D-frontier gate reaches a primary output through nodes
    /// that are still X in at least one machine.
    fn x_path_full(&self, nl: &Netlist, frontier: &[NodeId]) -> bool {
        let mut visited = vec![false; nl.num_nodes()];
        let mut stack: Vec<NodeId> = frontier.to_vec();
        while let Some(n) = stack.pop() {
            if visited[n.index()] {
                continue;
            }
            visited[n.index()] = true;
            let unknown =
                self.good[n.index()] == T3::X || self.faulty[n.index()] == T3::X;
            if !unknown && !frontier.contains(&n) {
                continue;
            }
            if nl.is_output(n) {
                return true;
            }
            stack.extend_from_slice(nl.fanouts(n));
        }
        false
    }
}

/// The good-machine node whose value excites the fault, with the value
/// it must take (oracle-only: the event engine asks its simulator).
#[cfg(feature = "oracle")]
fn excitation(nl: &Netlist, fault: Fault) -> (NodeId, bool) {
    match fault.site() {
        FaultSite::Stem(n) => (n, !fault.stuck_value()),
        FaultSite::Branch { gate, pin } => {
            (nl.fanins(gate)[pin as usize], !fault.stuck_value())
        }
    }
}

/// Chooses the next objective `(node, value)` from a D-frontier: the
/// easiest-to-observe gate that still has an unassigned side input, in
/// ascending SCOAP observability (stable, so ties keep node-id order —
/// the engine-parity contract depends on this). Shared by both engines.
fn objective_from_frontier(
    nl: &Netlist,
    scoap: &Scoap,
    frontier: &mut [NodeId],
    good: impl Fn(NodeId) -> T3,
) -> Option<(NodeId, bool)> {
    frontier.sort_by_key(|&g| scoap.co(g));
    for &gate in frontier.iter() {
        let kind = nl.kind(gate);
        let fanins = nl.fanins(gate);
        let x_inputs: Vec<NodeId> = fanins
            .iter()
            .copied()
            .filter(|&f| good(f) == T3::X)
            .collect();
        let target = match kind.controlling_value() {
            Some(c) => {
                // All X side-inputs eventually need the non-controlling
                // value; pursue the hardest first (standard heuristic).
                let v = !c;
                x_inputs
                    .into_iter()
                    .max_by_key(|&f| scoap.cc(f, v))
                    .map(|f| (f, v))
            }
            None => {
                // Parity / single-input gates: any X input propagates;
                // choose the cheapest overall assignment.
                x_inputs
                    .into_iter()
                    .map(|f| {
                        let zero_cheaper = scoap.cc0(f) <= scoap.cc1(f);
                        (f, !zero_cheaper)
                    })
                    .next()
            }
        };
        if target.is_some() {
            return target;
        }
    }
    None
}

/// Maps an objective to a primary-input assignment along X-valued lines.
/// Shared by both engines; `good` abstracts over the backend's value
/// storage (node-indexed arrays or position-mapped event state).
fn backtrace_from(
    nl: &Netlist,
    scoap: &Scoap,
    pi_index_of: &[usize],
    pi_values: &[T3],
    good: impl Fn(NodeId) -> T3,
    mut node: NodeId,
    mut value: bool,
) -> Option<(usize, bool)> {
    loop {
        let kind = nl.kind(node);
        if kind == GateKind::Input {
            let pi = pi_index_of[node.index()];
            debug_assert_ne!(pi, usize::MAX);
            if pi_values[pi] == T3::X {
                return Some((pi, value));
            }
            return None; // objective already blocked
        }
        if matches!(kind, GateKind::Const0 | GateKind::Const1) {
            return None;
        }
        let fanins = nl.fanins(node);
        let v_in = value != kind.is_inverting();
        let x_fanins: Vec<NodeId> = fanins
            .iter()
            .copied()
            .filter(|&f| good(f) == T3::X)
            .collect();
        if x_fanins.is_empty() {
            return None;
        }
        let next = match kind.controlling_value() {
            Some(c) => {
                if v_in == c {
                    // One input at the controlling value suffices:
                    // easiest.
                    x_fanins
                        .into_iter()
                        .min_by_key(|&f| scoap.cc(f, v_in))
                } else {
                    // All inputs must be non-controlling: hardest first.
                    x_fanins
                        .into_iter()
                        .max_by_key(|&f| scoap.cc(f, v_in))
                }
            }
            None => x_fanins
                .into_iter()
                .min_by_key(|&f| scoap.cc(f, v_in).min(scoap.cc(f, !v_in))),
        };
        node = next.expect("nonempty X fanins");
        value = v_in;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adi_netlist::bench_format;
    use adi_netlist::fault::FaultList;
    use adi_sim::faultsim::SimScratch;
    use adi_sim::{FaultSimulator, PatternSet};

    fn compile(netlist: &Netlist) -> CompiledCircuit {
        CompiledCircuit::compile(netlist.clone())
    }

    #[cfg(feature = "oracle")]
    const ENGINES: [PodemEngine; 2] = [PodemEngine::FullResim, PodemEngine::EventDriven];
    #[cfg(not(feature = "oracle"))]
    const ENGINES: [PodemEngine; 1] = [PodemEngine::EventDriven];

    const C17: &str = "
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

    #[test]
    fn every_c17_fault_gets_a_verified_test() {
        let n = bench_format::parse(C17, "c17").unwrap();
        let faults = FaultList::full(&n);
        let circuit = compile(&n);
        let sim = FaultSimulator::for_circuit(&circuit, &faults);
        let mut scratch = SimScratch::for_circuit(&circuit);
        for engine in ENGINES {
            let mut podem = Podem::for_circuit(
                &circuit,
                PodemConfig {
                    engine,
                    ..PodemConfig::default()
                },
            );
            for (id, fault) in faults.iter() {
                match podem.generate(fault) {
                    PodemOutcome::Test(cube) => {
                        // Every completion must detect the fault; check two.
                        for fill in [crate::FillStrategy::Zeros, crate::FillStrategy::Ones] {
                            let pattern = fill.fill(&cube, 0);
                            assert!(
                                sim.detects(&pattern, id, Some(&mut scratch)),
                                "[{engine}] cube {cube} (filled {fill:?}) misses fault {fault}"
                            );
                        }
                    }
                    other => panic!("[{engine}] c17 fault {fault} not tested: {other:?}"),
                }
            }
            let stats = podem.stats();
            assert_eq!(stats.targets, faults.len() as u64);
            assert_eq!(stats.tests, faults.len() as u64);
            assert_eq!(stats.untestable + stats.aborted, 0);
        }
    }

    #[cfg(feature = "oracle")]
    #[test]
    fn engines_agree_bit_for_bit_on_c17() {
        let n = bench_format::parse(C17, "c17").unwrap();
        let faults = FaultList::full(&n);
        let circuit = compile(&n);
        let mut full = Podem::for_circuit(
            &circuit,
            PodemConfig {
                engine: PodemEngine::FullResim,
                ..PodemConfig::default()
            },
        );
        let mut event = Podem::for_circuit(&circuit, PodemConfig::default());
        for (_, fault) in faults.iter() {
            assert_eq!(full.generate(fault), event.generate(fault), "{fault}");
        }
        let (fs, es) = (full.stats(), event.stats());
        assert_eq!(fs.search_counters(), es.search_counters());
        // The whole point: the event engine evaluates far fewer nodes.
        assert!(es.sim_events < fs.sim_events);
    }

    #[test]
    fn redundant_fault_is_proven_untestable() {
        // y = OR(a, NOT(a)) = 1 always: y s-a-1 is redundant.
        let src = "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = OR(a, na)\n";
        let n = bench_format::parse(src, "taut").unwrap();
        let y = n.find_node("y").unwrap();
        for engine in ENGINES {
            let mut podem = Podem::new(
                &n,
                PodemConfig {
                    engine,
                    ..PodemConfig::default()
                },
            );
            assert_eq!(
                podem.generate(Fault::stem_at(y, true)),
                PodemOutcome::Untestable,
                "[{engine}]"
            );
            // But y s-a-0 is testable (any pattern works).
            assert!(matches!(
                podem.generate(Fault::stem_at(y, false)),
                PodemOutcome::Test(_)
            ));
        }
    }

    #[test]
    fn branch_fault_testable_when_stem_redundantly_masked() {
        // Classic: s = a fans to two XOR-reconvergent paths; branch faults
        // behave differently from stem faults.
        let src = "
INPUT(a)
INPUT(b)
OUTPUT(y)
p = AND(a, b)
q = OR(a, b)
y = XOR(p, q)
";
        let n = bench_format::parse(src, "reconv").unwrap();
        let faults = FaultList::full(&n);
        let circuit = compile(&n);
        let sim = FaultSimulator::for_circuit(&circuit, &faults);
        let mut scratch = SimScratch::for_circuit(&circuit);
        for engine in ENGINES {
            let mut podem = Podem::for_circuit(
                &circuit,
                PodemConfig {
                    engine,
                    ..PodemConfig::default()
                },
            );
            for (id, fault) in faults.iter() {
                if let PodemOutcome::Test(cube) = podem.generate(fault) {
                    let pattern = crate::FillStrategy::Zeros.fill(&cube, 0);
                    assert!(
                        sim.detects(&pattern, id, Some(&mut scratch)),
                        "[{engine}] fault {fault}"
                    );
                }
            }
        }
    }

    #[test]
    fn exhaustive_cross_check_on_reconvergent_circuit() {
        // PODEM's testable/untestable verdicts must agree with exhaustive
        // fault simulation.
        let src = "
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
t = AND(a, b)
u = NOT(b)
v = AND(u, c)
y = OR(t, v)
";
        let n = bench_format::parse(src, "rc").unwrap();
        let faults = FaultList::full(&n);
        let patterns = PatternSet::exhaustive(3);
        let circuit = compile(&n);
        let sim = FaultSimulator::for_circuit(&circuit, &faults);
        let mut scratch = SimScratch::for_circuit(&circuit);
        let matrix = sim.no_drop_matrix(&patterns);
        for engine in ENGINES {
            let mut podem = Podem::for_circuit(
                &circuit,
                PodemConfig {
                    engine,
                    ..PodemConfig::default()
                },
            );
            for (id, fault) in faults.iter() {
                let testable = matrix.detected_any(id);
                match podem.generate(fault) {
                    PodemOutcome::Test(cube) => {
                        assert!(testable, "[{engine}] PODEM found test for undetectable {fault}");
                        let p = crate::FillStrategy::Random.fill(&cube, 5);
                        assert!(
                            sim.detects(&p, id, Some(&mut scratch)),
                            "[{engine}] bad test for {fault}"
                        );
                    }
                    PodemOutcome::Untestable => {
                        assert!(!testable, "[{engine}] PODEM wrongly proved {fault} redundant");
                    }
                    PodemOutcome::Aborted => {
                        panic!("[{engine}] abort on tiny circuit for {fault}")
                    }
                }
            }
        }
    }

    #[test]
    fn backtrack_limit_triggers_abort_or_verdict() {
        let n = bench_format::parse(C17, "c17").unwrap();
        let faults = FaultList::full(&n);
        let circuit = compile(&n);
        let sim = FaultSimulator::for_circuit(&circuit, &faults);
        let mut scratch = SimScratch::for_circuit(&circuit);
        for engine in ENGINES {
            let mut podem = Podem::for_circuit(
                &circuit,
                PodemConfig {
                    backtrack_limit: 0,
                    engine,
                    ..PodemConfig::default()
                },
            );
            // With zero backtracks allowed, every outcome must still be
            // sound: any Test produced must be correct.
            for (id, fault) in faults.iter() {
                if let PodemOutcome::Test(cube) = podem.generate(fault) {
                    let p = crate::FillStrategy::Zeros.fill(&cube, 0);
                    assert!(sim.detects(&p, id, Some(&mut scratch)), "[{engine}]");
                }
            }
        }
    }

    #[test]
    fn xor_propagation_works() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n";
        let n = bench_format::parse(src, "x2").unwrap();
        let a = n.find_node("a").unwrap();
        for engine in ENGINES {
            let mut podem = Podem::new(
                &n,
                PodemConfig {
                    engine,
                    ..PodemConfig::default()
                },
            );
            let outcome = podem.generate(Fault::stem_at(a, false));
            let cube = outcome.test().expect("a/0 is testable through XOR");
            assert_eq!(cube.get(0), Some(true)); // a must be 1 to excite s-a-0
        }
    }

    #[test]
    fn input_stem_fault_on_output_node() {
        // Fault directly on a PO that is also a PI.
        let src = "INPUT(a)\nOUTPUT(a)\n";
        let n = bench_format::parse(src, "wire").unwrap();
        let a = n.find_node("a").unwrap();
        for engine in ENGINES {
            let mut podem = Podem::new(
                &n,
                PodemConfig {
                    engine,
                    ..PodemConfig::default()
                },
            );
            let cube = podem
                .generate(Fault::stem_at(a, false))
                .test()
                .expect("testable");
            assert_eq!(cube.get(0), Some(true));
        }
    }

    #[test]
    fn default_engine_is_event_driven() {
        assert_eq!(PodemEngine::default(), PodemEngine::EventDriven);
        assert_eq!(PodemConfig::default().engine, PodemEngine::EventDriven);
        assert_eq!(PodemEngine::EventDriven.to_string(), "event-driven");
        #[cfg(feature = "oracle")]
        assert_eq!(PodemEngine::FullResim.to_string(), "full-resim");
        let n = bench_format::parse(C17, "c17").unwrap();
        let podem = Podem::new(&n, PodemConfig::default());
        assert_eq!(podem.engine(), PodemEngine::EventDriven);
    }
}
