//! PODEM: path-oriented decision making test generation (Goel, 1981).
//!
//! The generator maintains two 3-valued simulations — the good machine and
//! the machine with the target fault injected — and searches over primary
//! input assignments only. Each iteration:
//!
//! 1. If a fault effect (D/D̄) reaches a primary output, a test is found.
//! 2. Otherwise an **objective** is chosen: excite the fault if it is not
//!    yet excited, else advance a D-frontier gate with the lowest SCOAP
//!    observability.
//! 3. **Backtrace** maps the objective to an unassigned primary input,
//!    guided by SCOAP controllability.
//! 4. The input is assigned and both machines are re-simulated. Conflicts
//!    (fault unexcitable, empty D-frontier, or no X-path to any output)
//!    trigger chronological backtracking with a configurable limit.

use std::borrow::Cow;

use adi_netlist::fault::{Fault, FaultSite};
use adi_netlist::{CompiledCircuit, GateKind, Netlist, NodeId};

use crate::value::{eval_t3, T3};
use crate::{Scoap, TestCube};

/// Tuning knobs for [`Podem`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PodemConfig {
    /// Maximum number of backtracks before the target is abandoned as
    /// [`PodemOutcome::Aborted`].
    pub backtrack_limit: u32,
}

impl Default for PodemConfig {
    /// 1000 backtracks, a generous budget for circuits of the paper's
    /// scale.
    fn default() -> Self {
        PodemConfig {
            backtrack_limit: 1000,
        }
    }
}

/// The outcome of one PODEM run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PodemOutcome {
    /// A test cube whose every completion detects the target fault.
    Test(TestCube),
    /// The fault is provably untestable (redundant).
    Untestable,
    /// The backtrack limit was exhausted before a verdict.
    Aborted,
}

impl PodemOutcome {
    /// Returns the test cube if a test was found.
    pub fn test(self) -> Option<TestCube> {
        match self {
            PodemOutcome::Test(c) => Some(c),
            _ => None,
        }
    }
}

/// Counters accumulated across [`Podem::generate`] calls.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PodemStats {
    /// Total targets attempted.
    pub targets: u64,
    /// Tests found.
    pub tests: u64,
    /// Untestable proofs.
    pub untestable: u64,
    /// Aborted targets.
    pub aborted: u64,
    /// Total backtracks across all targets.
    pub backtracks: u64,
    /// Total primary-input decisions across all targets.
    pub decisions: u64,
}

/// The PODEM test generator, reusable across many target faults of one
/// netlist.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Clone, Debug)]
pub struct Podem<'a> {
    netlist: &'a Netlist,
    scoap: Cow<'a, Scoap>,
    config: PodemConfig,
    stats: PodemStats,
    good: Vec<T3>,
    faulty: Vec<T3>,
    pi_values: Vec<T3>,
    pi_index_of: Vec<usize>,
}

#[derive(Clone, Copy, Debug)]
struct Decision {
    pi: usize,
    value: bool,
    flipped: bool,
}

impl<'a> Podem<'a> {
    /// Creates a generator for `netlist`, precomputing SCOAP measures.
    ///
    /// When a [`CompiledCircuit`] is available, prefer
    /// [`Podem::for_circuit`], which borrows the compilation's cached
    /// SCOAP instead of recomputing it.
    pub fn new(netlist: &'a Netlist, config: PodemConfig) -> Self {
        Self::with_scoap(netlist, Cow::Owned(Scoap::compute(netlist)), config)
    }

    /// Creates a generator over a compiled circuit, sharing its cached
    /// SCOAP measures (computed once per compilation, not per
    /// generator).
    pub fn for_circuit(circuit: &'a CompiledCircuit, config: PodemConfig) -> Self {
        Self::with_scoap(circuit.netlist(), Cow::Borrowed(circuit.scoap()), config)
    }

    fn with_scoap(netlist: &'a Netlist, scoap: Cow<'a, Scoap>, config: PodemConfig) -> Self {
        let mut pi_index_of = vec![usize::MAX; netlist.num_nodes()];
        for (i, &pi) in netlist.inputs().iter().enumerate() {
            pi_index_of[pi.index()] = i;
        }
        Podem {
            netlist,
            scoap,
            config,
            stats: PodemStats::default(),
            good: vec![T3::X; netlist.num_nodes()],
            faulty: vec![T3::X; netlist.num_nodes()],
            pi_values: vec![T3::X; netlist.num_inputs()],
            pi_index_of,
        }
    }

    /// Cumulative statistics over all `generate` calls.
    pub fn stats(&self) -> PodemStats {
        self.stats
    }

    /// The SCOAP measures used by backtrace (exposed for diagnostics).
    pub fn scoap(&self) -> &Scoap {
        &self.scoap
    }

    /// Attempts to generate a test for `fault`.
    ///
    /// # Panics
    ///
    /// Panics if the fault references nodes outside the netlist.
    pub fn generate(&mut self, fault: Fault) -> PodemOutcome {
        self.stats.targets += 1;
        self.pi_values.fill(T3::X);
        let mut stack: Vec<Decision> = Vec::new();
        let mut backtracks: u32 = 0;

        loop {
            self.simulate(fault);
            if self.detected() {
                self.stats.tests += 1;
                return PodemOutcome::Test(TestCube::from_t3(&self.pi_values));
            }

            let objective = if self.conflict(fault) {
                None
            } else {
                self.objective(fault)
            };

            if let Some((node, value)) = objective {
                if let Some((pi, v)) = self.backtrace(node, value) {
                    self.stats.decisions += 1;
                    self.pi_values[pi] = T3::from_bool(v);
                    stack.push(Decision {
                        pi,
                        value: v,
                        flipped: false,
                    });
                    continue;
                }
            }

            // Conflict (or no objective reachable): chronological backtrack.
            loop {
                match stack.pop() {
                    None => {
                        self.stats.untestable += 1;
                        return PodemOutcome::Untestable;
                    }
                    Some(d) if !d.flipped => {
                        backtracks += 1;
                        self.stats.backtracks += 1;
                        if backtracks > self.config.backtrack_limit {
                            self.stats.aborted += 1;
                            return PodemOutcome::Aborted;
                        }
                        self.pi_values[d.pi] = T3::from_bool(!d.value);
                        stack.push(Decision {
                            pi: d.pi,
                            value: !d.value,
                            flipped: true,
                        });
                        break;
                    }
                    Some(d) => {
                        self.pi_values[d.pi] = T3::X;
                    }
                }
            }
        }
    }

    /// Re-simulates both machines from the current PI assignment.
    fn simulate(&mut self, fault: Fault) {
        let nl = self.netlist;
        for (i, &pi) in nl.inputs().iter().enumerate() {
            self.good[pi.index()] = self.pi_values[i];
            self.faulty[pi.index()] = self.pi_values[i];
        }
        let stuck = T3::from_bool(fault.stuck_value());
        for &node in nl.topo_order() {
            let kind = nl.kind(node);
            if kind != GateKind::Input {
                let gv = eval_t3(kind, nl.fanins(node), |f| self.good[f.index()]);
                self.good[node.index()] = gv;
            }
            // Faulty machine with injection.
            let fv = match fault.site() {
                FaultSite::Stem(n) if n == node => stuck,
                FaultSite::Branch { gate, pin } if gate == node => {
                    eval_branch_t3(kind, nl.fanins(node), pin as usize, stuck, &self.faulty)
                }
                _ => {
                    if kind == GateKind::Input {
                        self.faulty[node.index()]
                    } else {
                        eval_t3(kind, nl.fanins(node), |f| self.faulty[f.index()])
                    }
                }
            };
            self.faulty[node.index()] = fv;
        }
    }

    /// True if some primary output shows a binary good/faulty discrepancy.
    fn detected(&self) -> bool {
        self.netlist.outputs().iter().any(|&o| {
            let g = self.good[o.index()];
            let f = self.faulty[o.index()];
            g.is_binary() && f.is_binary() && g != f
        })
    }

    /// The good-machine node whose value excites the fault, with the value
    /// it must take.
    fn excitation(&self, fault: Fault) -> (NodeId, bool) {
        match fault.site() {
            FaultSite::Stem(n) => (n, !fault.stuck_value()),
            FaultSite::Branch { gate, pin } => {
                (self.netlist.fanins(gate)[pin as usize], !fault.stuck_value())
            }
        }
    }

    /// Conflict detection: the current partial assignment can no longer
    /// lead to a test.
    ///
    /// Three-valued simulation is monotone in assignment refinement, so a
    /// binary node value is final: once the excitation line is pinned to
    /// the stuck value, or every effect path is blocked, no completion of
    /// the assignment can detect the fault.
    fn conflict(&self, fault: Fault) -> bool {
        let (site, needed) = self.excitation(fault);
        let gv = self.good[site.index()];
        if gv.is_binary() && gv != T3::from_bool(needed) {
            return true; // fault can never be excited
        }
        if !gv.is_binary() {
            return false; // not excited yet; excitation is the objective
        }
        // Excited: a fault effect exists on the fault line. It must still
        // be able to reach a primary output. A stem fault places D on its
        // node; a branch fault places D on the (un-modelled) branch line,
        // so the reading gate acts as its frontier entry.
        if self.effect_at_output() {
            return false; // handled by `detected`, defensive
        }
        let frontier = self.d_frontier(fault);
        if frontier.is_empty() {
            // For a stem fault the stem itself may still be an observable
            // PO; that case is `detected`. Nothing can advance the effect.
            return true;
        }
        !self.x_path_exists(&frontier)
    }

    fn effect_at_output(&self) -> bool {
        self.netlist.outputs().iter().any(|&o| {
            let g = self.good[o.index()];
            let f = self.faulty[o.index()];
            g.is_binary() && f.is_binary() && g != f
        })
    }

    /// Gates whose output is still undetermined in some machine while at
    /// least one input carries a fault effect. The branch-fault gate
    /// itself belongs to the frontier while the branch line carries D and
    /// the gate output is undetermined.
    fn d_frontier(&self, fault: Fault) -> Vec<NodeId> {
        let nl = self.netlist;
        let branch_gate = match fault.site() {
            FaultSite::Branch { gate, .. } => {
                let (driver, needed) = self.excitation(fault);
                let excited = self.good[driver.index()] == T3::from_bool(needed);
                excited.then_some(gate)
            }
            FaultSite::Stem(_) => None,
        };
        nl.node_ids()
            .filter(|&n| {
                let out_unknown =
                    self.good[n.index()] == T3::X || self.faulty[n.index()] == T3::X;
                if !out_unknown || nl.kind(n) == GateKind::Input {
                    return false;
                }
                if branch_gate == Some(n) {
                    return true;
                }
                nl.fanins(n).iter().any(|&f| {
                    let g = self.good[f.index()];
                    let fv = self.faulty[f.index()];
                    g.is_binary() && fv.is_binary() && g != fv
                })
            })
            .collect()
    }

    /// True if some D-frontier gate reaches a primary output through nodes
    /// that are still X in at least one machine.
    fn x_path_exists(&self, frontier: &[NodeId]) -> bool {
        let nl = self.netlist;
        let mut visited = vec![false; nl.num_nodes()];
        let mut stack: Vec<NodeId> = frontier.to_vec();
        while let Some(n) = stack.pop() {
            if visited[n.index()] {
                continue;
            }
            visited[n.index()] = true;
            let unknown =
                self.good[n.index()] == T3::X || self.faulty[n.index()] == T3::X;
            if !unknown && !frontier.contains(&n) {
                continue;
            }
            if nl.is_output(n) {
                return true;
            }
            stack.extend_from_slice(nl.fanouts(n));
        }
        false
    }

    /// Chooses the next objective `(node, value)`.
    fn objective(&self, fault: Fault) -> Option<(NodeId, bool)> {
        let (site, needed) = self.excitation(fault);
        if self.good[site.index()] == T3::X {
            return Some((site, needed));
        }
        // Advance the easiest-to-observe D-frontier gate that still has an
        // unassigned side input.
        let mut frontier = self.d_frontier(fault);
        frontier.sort_by_key(|&g| self.scoap.co(g));
        for gate in frontier {
            let kind = self.netlist.kind(gate);
            let fanins = self.netlist.fanins(gate);
            let x_inputs: Vec<NodeId> = fanins
                .iter()
                .copied()
                .filter(|&f| self.good[f.index()] == T3::X)
                .collect();
            let target = match kind.controlling_value() {
                Some(c) => {
                    // All X side-inputs eventually need the non-controlling
                    // value; pursue the hardest first (standard heuristic).
                    let v = !c;
                    x_inputs
                        .into_iter()
                        .max_by_key(|&f| self.scoap.cc(f, v))
                        .map(|f| (f, v))
                }
                None => {
                    // Parity / single-input gates: any X input propagates;
                    // choose the cheapest overall assignment.
                    x_inputs
                        .into_iter()
                        .map(|f| {
                            let zero_cheaper = self.scoap.cc0(f) <= self.scoap.cc1(f);
                            (f, !zero_cheaper)
                        })
                        .next()
                }
            };
            if target.is_some() {
                return target;
            }
        }
        None
    }

    /// Maps an objective to a primary-input assignment along X-valued
    /// lines.
    fn backtrace(&self, mut node: NodeId, mut value: bool) -> Option<(usize, bool)> {
        let nl = self.netlist;
        loop {
            let kind = nl.kind(node);
            if kind == GateKind::Input {
                let pi = self.pi_index_of[node.index()];
                debug_assert_ne!(pi, usize::MAX);
                if self.pi_values[pi] == T3::X {
                    return Some((pi, value));
                }
                return None; // objective already blocked
            }
            if matches!(kind, GateKind::Const0 | GateKind::Const1) {
                return None;
            }
            let fanins = nl.fanins(node);
            let v_in = value != kind.is_inverting();
            let x_fanins: Vec<NodeId> = fanins
                .iter()
                .copied()
                .filter(|&f| self.good[f.index()] == T3::X)
                .collect();
            if x_fanins.is_empty() {
                return None;
            }
            let next = match kind.controlling_value() {
                Some(c) => {
                    if v_in == c {
                        // One input at the controlling value suffices:
                        // easiest.
                        x_fanins
                            .into_iter()
                            .min_by_key(|&f| self.scoap.cc(f, v_in))
                    } else {
                        // All inputs must be non-controlling: hardest first.
                        x_fanins
                            .into_iter()
                            .max_by_key(|&f| self.scoap.cc(f, v_in))
                    }
                }
                None => x_fanins
                    .into_iter()
                    .min_by_key(|&f| self.scoap.cc(f, v_in).min(self.scoap.cc(f, !v_in))),
            };
            node = next.expect("nonempty X fanins");
            value = v_in;
        }
    }
}

/// Evaluates a gate in ternary logic with one fanin pin forced to `stuck`
/// (branch-fault injection for the faulty machine).
fn eval_branch_t3(kind: GateKind, fanins: &[NodeId], pin: usize, stuck: T3, faulty: &[T3]) -> T3 {
    let value = |i: usize| {
        if i == pin {
            stuck
        } else {
            faulty[fanins[i].index()]
        }
    };
    match kind {
        GateKind::Buf => value(0),
        GateKind::Not => !value(0),
        GateKind::And => (0..fanins.len()).fold(T3::One, |acc, i| acc & value(i)),
        GateKind::Nand => !(0..fanins.len()).fold(T3::One, |acc, i| acc & value(i)),
        GateKind::Or => (0..fanins.len()).fold(T3::Zero, |acc, i| acc | value(i)),
        GateKind::Nor => !(0..fanins.len()).fold(T3::Zero, |acc, i| acc | value(i)),
        GateKind::Xor => (0..fanins.len()).fold(T3::Zero, |acc, i| acc ^ value(i)),
        GateKind::Xnor => !(0..fanins.len()).fold(T3::Zero, |acc, i| acc ^ value(i)),
        GateKind::Input | GateKind::Const0 | GateKind::Const1 => {
            panic!("{kind:?} has no fanin pins")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adi_netlist::bench_format;
    use adi_netlist::fault::FaultList;
    use adi_sim::faultsim::SimScratch;
    use adi_sim::{FaultSimulator, PatternSet};

    fn compile(netlist: &Netlist) -> CompiledCircuit {
        CompiledCircuit::compile(netlist.clone())
    }

    const C17: &str = "
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

    #[test]
    fn every_c17_fault_gets_a_verified_test() {
        let n = bench_format::parse(C17, "c17").unwrap();
        let faults = FaultList::full(&n);
        let circuit = compile(&n);
        let sim = FaultSimulator::for_circuit(&circuit, &faults);
        let mut scratch = SimScratch::for_circuit(&circuit);
        let mut podem = Podem::new(&n, PodemConfig::default());
        for (id, fault) in faults.iter() {
            match podem.generate(fault) {
                PodemOutcome::Test(cube) => {
                    // Every completion must detect the fault; check two.
                    for fill in [crate::FillStrategy::Zeros, crate::FillStrategy::Ones] {
                        let pattern = fill.fill(&cube, 0);
                        assert!(
                            sim.detects(&pattern, id, Some(&mut scratch)),
                            "cube {cube} (filled {fill:?}) misses fault {fault}"
                        );
                    }
                }
                other => panic!("c17 fault {fault} not tested: {other:?}"),
            }
        }
        let stats = podem.stats();
        assert_eq!(stats.targets, faults.len() as u64);
        assert_eq!(stats.tests, faults.len() as u64);
        assert_eq!(stats.untestable + stats.aborted, 0);
    }

    #[test]
    fn redundant_fault_is_proven_untestable() {
        // y = OR(a, NOT(a)) = 1 always: y s-a-1 is redundant.
        let src = "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = OR(a, na)\n";
        let n = bench_format::parse(src, "taut").unwrap();
        let y = n.find_node("y").unwrap();
        let mut podem = Podem::new(&n, PodemConfig::default());
        assert_eq!(
            podem.generate(Fault::stem_at(y, true)),
            PodemOutcome::Untestable
        );
        // But y s-a-0 is testable (any pattern works).
        assert!(matches!(
            podem.generate(Fault::stem_at(y, false)),
            PodemOutcome::Test(_)
        ));
    }

    #[test]
    fn branch_fault_testable_when_stem_redundantly_masked() {
        // Classic: s = a fans to two XOR-reconvergent paths; branch faults
        // behave differently from stem faults.
        let src = "
INPUT(a)
INPUT(b)
OUTPUT(y)
p = AND(a, b)
q = OR(a, b)
y = XOR(p, q)
";
        let n = bench_format::parse(src, "reconv").unwrap();
        let faults = FaultList::full(&n);
        let circuit = compile(&n);
        let sim = FaultSimulator::for_circuit(&circuit, &faults);
        let mut scratch = SimScratch::for_circuit(&circuit);
        let mut podem = Podem::new(&n, PodemConfig::default());
        for (id, fault) in faults.iter() {
            if let PodemOutcome::Test(cube) = podem.generate(fault) {
                let pattern = crate::FillStrategy::Zeros.fill(&cube, 0);
                assert!(sim.detects(&pattern, id, Some(&mut scratch)), "fault {fault}");
            }
        }
    }

    #[test]
    fn exhaustive_cross_check_on_reconvergent_circuit() {
        // PODEM's testable/untestable verdicts must agree with exhaustive
        // fault simulation.
        let src = "
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
t = AND(a, b)
u = NOT(b)
v = AND(u, c)
y = OR(t, v)
";
        let n = bench_format::parse(src, "rc").unwrap();
        let faults = FaultList::full(&n);
        let patterns = PatternSet::exhaustive(3);
        let circuit = compile(&n);
        let sim = FaultSimulator::for_circuit(&circuit, &faults);
        let mut scratch = SimScratch::for_circuit(&circuit);
        let matrix = sim.no_drop_matrix(&patterns);
        let mut podem = Podem::new(&n, PodemConfig::default());
        for (id, fault) in faults.iter() {
            let testable = matrix.detected_any(id);
            match podem.generate(fault) {
                PodemOutcome::Test(cube) => {
                    assert!(testable, "PODEM found test for undetectable {fault}");
                    let p = crate::FillStrategy::Random.fill(&cube, 5);
                    assert!(sim.detects(&p, id, Some(&mut scratch)), "bad test for {fault}");
                }
                PodemOutcome::Untestable => {
                    assert!(!testable, "PODEM wrongly proved {fault} redundant");
                }
                PodemOutcome::Aborted => panic!("abort on tiny circuit for {fault}"),
            }
        }
    }

    #[test]
    fn backtrack_limit_triggers_abort_or_verdict() {
        let n = bench_format::parse(C17, "c17").unwrap();
        let faults = FaultList::full(&n);
        let mut podem = Podem::new(
            &n,
            PodemConfig {
                backtrack_limit: 0,
            },
        );
        // With zero backtracks allowed, every outcome must still be sound:
        // any Test produced must be correct.
        let circuit = compile(&n);
        let sim = FaultSimulator::for_circuit(&circuit, &faults);
        let mut scratch = SimScratch::for_circuit(&circuit);
        for (id, fault) in faults.iter() {
            if let PodemOutcome::Test(cube) = podem.generate(fault) {
                let p = crate::FillStrategy::Zeros.fill(&cube, 0);
                assert!(sim.detects(&p, id, Some(&mut scratch)));
            }
        }
    }

    #[test]
    fn xor_propagation_works() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n";
        let n = bench_format::parse(src, "x2").unwrap();
        let a = n.find_node("a").unwrap();
        let mut podem = Podem::new(&n, PodemConfig::default());
        let outcome = podem.generate(Fault::stem_at(a, false));
        let cube = outcome.test().expect("a/0 is testable through XOR");
        assert_eq!(cube.get(0), Some(true)); // a must be 1 to excite s-a-0
    }

    #[test]
    fn input_stem_fault_on_output_node() {
        // Fault directly on a PO that is also a PI.
        let src = "INPUT(a)\nOUTPUT(a)\n";
        let n = bench_format::parse(src, "wire").unwrap();
        let a = n.find_node("a").unwrap();
        let mut podem = Podem::new(&n, PodemConfig::default());
        let cube = podem
            .generate(Fault::stem_at(a, false))
            .test()
            .expect("testable");
        assert_eq!(cube.get(0), Some(true));
    }
}
