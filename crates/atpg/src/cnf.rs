//! CNF encoding of the compiled position space: Tseitin clauses,
//! per-fault miters with fault-injection networks, and full-circuit
//! equivalence miters.
//!
//! This is the formal side of the ATPG stack. Where PODEM searches the
//! input space directly (and gives up at its backtrack limit), this
//! module translates a question about the circuit into propositional
//! satisfiability and hands it to the vendored CDCL solver
//! ([`sat::Solver`]):
//!
//! * [`prove_fault`] — *is this stuck-at fault testable?* Builds a
//!   **miter** between the good circuit and a fault-injected copy,
//!   restricted to the fault's output cone: only positions in the
//!   fault's transitive fanout get distinct "faulty" variables, every
//!   other line is shared, and fanout nodes whose cached reachability
//!   mask ([`LevelizedCsr::out_mask_at`]) is zero are skipped outright
//!   because nothing they compute can reach an output. SAT ⇒ the model
//!   is a [`TestCube`]; UNSAT ⇒ the fault is **provably redundant**;
//!   a conflict-limited run may also return
//!   [`FaultVerdict::Undecided`].
//! * [`check_equiv`] — *do two netlists compute the same outputs?*
//!   A full-circuit miter over shared primary inputs (matched by
//!   declaration order). UNSAT ⇒ equivalent; SAT ⇒ a concrete
//!   distinguishing input assignment.
//!
//! The encoding walks positions of the [`LevelizedCsr`] in order — a
//! node's fanins always sit at lower positions, so one forward sweep
//! emits every gate's clauses after its input literals exist. All gate
//! kinds are supported at their full arity; n-ary XOR/XNOR chains
//! through auxiliary parity variables.
//!
//! Everything here is deterministic: the same circuit and fault always
//! produce the same clause set in the same order, and the solver itself
//! is deterministic, so verdicts (and extracted cubes) are reproducible
//! across runs, threads, and the speculative ATPG pool.

use adi_netlist::fault::{Fault, FaultSite};
use adi_netlist::{CompiledCircuit, GateKind, LevelizedCsr};
use sat::{Lit, Solver, Verdict};

use crate::cube::TestCube;

/// Default conflict budget for one fault query or equivalence check.
///
/// Circuit miters in this workload are shallow; the suite's hardest
/// redundancy proofs finish within a few hundred conflicts, so this
/// leaves ample headroom while still bounding a pathological query.
pub const DEFAULT_CONFLICT_LIMIT: u64 = 100_000;

/// Verdict of a single-fault testability query ([`prove_fault`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FaultVerdict {
    /// The fault is testable; the cube is a satisfying input assignment
    /// (unspecified entries are inputs outside the miter's support —
    /// any completion detects the fault).
    Testable(TestCube),
    /// The miter is unsatisfiable: no input assignment distinguishes
    /// the faulty circuit, i.e. the fault is provably redundant.
    Redundant,
    /// The conflict limit ran out before a verdict.
    Undecided,
}

/// Verdict of a bounded equivalence check ([`check_equiv`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EquivVerdict {
    /// The miter is unsatisfiable: the circuits agree on every input.
    Equivalent,
    /// A distinguishing assignment exists; one is returned, one value
    /// per primary input in declaration order.
    Inequivalent(Vec<bool>),
    /// The conflict limit ran out before a verdict.
    Undecided,
}

/// Interface mismatch between the two sides of an equivalence check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EquivError {
    /// The circuits declare different primary-input counts.
    InputCountMismatch(usize, usize),
    /// The circuits declare different primary-output counts.
    OutputCountMismatch(usize, usize),
}

impl std::fmt::Display for EquivError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            EquivError::InputCountMismatch(l, r) => {
                write!(f, "input count mismatch: left has {l}, right has {r}")
            }
            EquivError::OutputCountMismatch(l, r) => {
                write!(f, "output count mismatch: left has {l}, right has {r}")
            }
        }
    }
}

impl std::error::Error for EquivError {}

/// Forces the line carried by `l` to `value` with a unit clause.
fn force(s: &mut Solver, l: Lit, value: bool) {
    s.add_clause(&[if value { l } else { !l }]);
}

/// Emits `a ≡ b`.
fn equiv2(s: &mut Solver, a: Lit, b: Lit) {
    s.add_clause(&[!a, b]);
    s.add_clause(&[a, !b]);
}

/// Emits `z ≡ a ⊕ b`.
fn xor3(s: &mut Solver, z: Lit, a: Lit, b: Lit) {
    s.add_clause(&[!z, a, b]);
    s.add_clause(&[!z, !a, !b]);
    s.add_clause(&[z, !a, b]);
    s.add_clause(&[z, a, !b]);
}

/// Emits the Tseitin clauses binding `out` to `kind` over `ins`.
///
/// `Input` positions have no logic function and must not be passed here;
/// constants take no input literals.
fn encode_gate(s: &mut Solver, kind: GateKind, out: Lit, ins: &[Lit]) {
    match kind {
        GateKind::Input => unreachable!("inputs have no gate function"),
        GateKind::Const0 => {
            s.add_clause(&[!out]);
        }
        GateKind::Const1 => {
            s.add_clause(&[out]);
        }
        GateKind::Buf => equiv2(s, out, ins[0]),
        GateKind::Not => equiv2(s, out, !ins[0]),
        GateKind::And => {
            let mut long: Vec<Lit> = ins.iter().map(|&i| !i).collect();
            long.push(out);
            for &i in ins {
                s.add_clause(&[!out, i]);
            }
            s.add_clause(&long);
        }
        GateKind::Nand => {
            let mut long: Vec<Lit> = ins.iter().map(|&i| !i).collect();
            long.push(!out);
            for &i in ins {
                s.add_clause(&[out, i]);
            }
            s.add_clause(&long);
        }
        GateKind::Or => {
            let mut long: Vec<Lit> = ins.to_vec();
            long.push(!out);
            for &i in ins {
                s.add_clause(&[out, !i]);
            }
            s.add_clause(&long);
        }
        GateKind::Nor => {
            let mut long: Vec<Lit> = ins.to_vec();
            long.push(out);
            for &i in ins {
                s.add_clause(&[!out, !i]);
            }
            s.add_clause(&long);
        }
        GateKind::Xor | GateKind::Xnor => {
            // Fold a parity chain through auxiliary variables; the last
            // link binds `out` directly (inverted for XNOR).
            let target = if kind == GateKind::Xor { out } else { !out };
            match ins.len() {
                1 => equiv2(s, target, ins[0]),
                _ => {
                    let mut acc = ins[0];
                    for (k, &i) in ins.iter().enumerate().skip(1) {
                        if k + 1 == ins.len() {
                            xor3(s, target, acc, i);
                        } else {
                            let aux = Lit::pos(s.new_var());
                            xor3(s, aux, acc, i);
                            acc = aux;
                        }
                    }
                }
            }
        }
    }
}

/// Encodes the backward closure of `roots` (positions of `csr`) into
/// `solver`, sharing `input_lits` (one per primary input, in declaration
/// order) for the `Input` positions. Returns one literal per position
/// (`None` outside the closure).
fn encode_cone(
    solver: &mut Solver,
    csr: &LevelizedCsr,
    input_lits: &[Lit],
    roots: &[usize],
) -> Vec<Option<Lit>> {
    let n = csr.num_nodes();
    let mut needed = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    for &r in roots {
        if !needed[r] {
            needed[r] = true;
            stack.push(r);
        }
    }
    while let Some(p) = stack.pop() {
        for &f in csr.fanins_at(p) {
            let fp = f as usize;
            if !needed[fp] {
                needed[fp] = true;
                stack.push(fp);
            }
        }
    }
    let mut lit: Vec<Option<Lit>> = vec![None; n];
    for (k, &ip) in csr.inputs().iter().enumerate() {
        lit[ip as usize] = Some(input_lits[k]);
    }
    for p in 0..n {
        if !needed[p] || lit[p].is_some() {
            continue;
        }
        let out = Lit::pos(solver.new_var());
        lit[p] = Some(out);
        let ins: Vec<Lit> = csr
            .fanins_at(p)
            .iter()
            .map(|&f| lit[f as usize].expect("fanin precedes reader in position order"))
            .collect();
        encode_gate(solver, csr.kind_at(p), out, &ins);
    }
    lit
}

/// Builds and solves the cone-restricted fault miter for `fault`.
///
/// See the [module docs](self) for the construction. The query is
/// bounded by `conflict_limit` solver conflicts; pass
/// [`DEFAULT_CONFLICT_LIMIT`] unless you have a reason not to.
///
/// # Panics
///
/// Panics if `fault` references nodes outside `circuit`.
pub fn prove_fault(circuit: &CompiledCircuit, fault: Fault, conflict_limit: u64) -> FaultVerdict {
    static SPAN_PROVE: adi_obs::SpanSite = adi_obs::SpanSite::new("sat.prove");
    let _span = SPAN_PROVE.enter();
    let csr = circuit.view();
    let n = csr.num_nodes();
    let epos = csr.position(fault.effect_node());

    // A fault whose effect site reaches no output is redundant outright;
    // the cached reachability mask answers this without a solver.
    if !csr.reaches_output(epos) {
        return FaultVerdict::Redundant;
    }

    // Faulty region F: the transitive fanout of the effect site, pruned
    // by the cached output-cone masks — a fanout node that reaches no
    // output cannot influence the miter.
    let mut in_f = vec![false; n];
    let mut stack = vec![epos];
    in_f[epos] = true;
    while let Some(p) = stack.pop() {
        for &g in csr.fanouts_at(p) {
            let gp = g as usize;
            if !in_f[gp] && csr.reaches_output(gp) {
                in_f[gp] = true;
                stack.push(gp);
            }
        }
    }
    let f_positions: Vec<usize> = (0..n).filter(|&p| in_f[p]).collect();
    let miter_outputs: Vec<usize> = f_positions
        .iter()
        .copied()
        .filter(|&p| csr.is_output_at(p))
        .collect();
    if miter_outputs.is_empty() {
        return FaultVerdict::Redundant;
    }

    let mut solver = Solver::new();
    let input_lits: Vec<Lit> = csr
        .inputs()
        .iter()
        .map(|_| Lit::pos(solver.new_var()))
        .collect();

    // Good copy: the backward closure of the miter outputs plus every
    // line the faulty region reads (shared fanins outside F) plus the
    // activation site.
    let mut roots: Vec<usize> = miter_outputs.clone();
    roots.push(epos);
    for &p in &f_positions {
        roots.extend(csr.fanins_at(p).iter().map(|&f| f as usize));
    }
    let good = encode_cone(&mut solver, csr, &input_lits, &roots);

    // Faulty copy: fresh variables for F only; everything else shares
    // the good line. The effect site itself is the injection point.
    let mut faulty: Vec<Option<Lit>> = good.clone();
    for &p in &f_positions {
        faulty[p] = Some(Lit::pos(solver.new_var()));
    }
    let stuck_lit = {
        // One variable pinned to the stuck value models the broken line.
        let l = Lit::pos(solver.new_var());
        force(&mut solver, l, fault.stuck_value());
        l
    };
    for &p in &f_positions {
        let out = faulty[p].expect("faulty region was just allocated");
        if p == epos {
            match fault.site() {
                FaultSite::Stem(_) => {
                    // The stem's output line is the stuck constant.
                    force(&mut solver, out, fault.stuck_value());
                    // Activation: the good value must differ or the two
                    // copies are identical (pure strengthening).
                    let g = good[p].expect("effect site is in the good closure");
                    force(&mut solver, g, !fault.stuck_value());
                }
                FaultSite::Branch { pin, .. } => {
                    // The reading gate sees the stuck constant on `pin`;
                    // every other pin reads its normal (shared or
                    // faulty) line.
                    let ins: Vec<Lit> = csr
                        .fanins_at(p)
                        .iter()
                        .enumerate()
                        .map(|(k, &f)| {
                            if k == pin as usize {
                                stuck_lit
                            } else {
                                faulty[f as usize].expect("fanin encoded")
                            }
                        })
                        .collect();
                    encode_gate(&mut solver, csr.kind_at(p), out, &ins);
                    // Activation: the branch's source line must carry
                    // the non-stuck value.
                    let src = csr.fanins_at(p)[pin as usize] as usize;
                    let g = good[src].expect("branch source is in the good closure");
                    force(&mut solver, g, !fault.stuck_value());
                }
            }
        } else if csr.kind_at(p) == GateKind::Input {
            // An input inside F can only be the effect site itself.
            unreachable!("primary inputs have no fanins to propagate a fault through");
        } else {
            let ins: Vec<Lit> = csr
                .fanins_at(p)
                .iter()
                .map(|&f| faulty[f as usize].expect("fanin encoded"))
                .collect();
            encode_gate(&mut solver, csr.kind_at(p), out, &ins);
        }
    }

    // Miter: at least one relevant output differs.
    let mut diff: Vec<Lit> = Vec::with_capacity(miter_outputs.len());
    for &o in &miter_outputs {
        let d = Lit::pos(solver.new_var());
        xor3(
            &mut solver,
            d,
            good[o].expect("miter output in good closure"),
            faulty[o].expect("miter output in faulty region"),
        );
        diff.push(d);
    }
    solver.add_clause(&diff);

    match solver.solve(conflict_limit) {
        Verdict::Unsat => FaultVerdict::Redundant,
        Verdict::Unknown => FaultVerdict::Undecided,
        Verdict::Sat => {
            let values: Vec<Option<bool>> = input_lits
                .iter()
                .map(|l| solver.value(l.var()))
                .collect();
            FaultVerdict::Testable(TestCube::from_options(values))
        }
    }
}

/// Checks bounded equivalence of two compiled circuits via a
/// full-circuit miter over shared primary inputs.
///
/// Inputs and outputs are matched by declaration order; the counts must
/// agree on both sides ([`EquivError`] otherwise — names are ignored,
/// matching the hash-based cache's rename-invariance). The check is
/// bounded by `conflict_limit` solver conflicts and may return
/// [`EquivVerdict::Undecided`].
pub fn check_equiv(
    left: &CompiledCircuit,
    right: &CompiledCircuit,
    conflict_limit: u64,
) -> Result<EquivVerdict, EquivError> {
    static SPAN_EQUIV: adi_obs::SpanSite = adi_obs::SpanSite::new("sat.equiv");
    let _span = SPAN_EQUIV.enter();
    let (lv, rv) = (left.view(), right.view());
    if lv.inputs().len() != rv.inputs().len() {
        return Err(EquivError::InputCountMismatch(
            lv.inputs().len(),
            rv.inputs().len(),
        ));
    }
    if lv.outputs().len() != rv.outputs().len() {
        return Err(EquivError::OutputCountMismatch(
            lv.outputs().len(),
            rv.outputs().len(),
        ));
    }

    let mut solver = Solver::new();
    let input_lits: Vec<Lit> = lv
        .inputs()
        .iter()
        .map(|_| Lit::pos(solver.new_var()))
        .collect();
    let lroots: Vec<usize> = lv.outputs().iter().map(|&p| p as usize).collect();
    let rroots: Vec<usize> = rv.outputs().iter().map(|&p| p as usize).collect();
    let llit = encode_cone(&mut solver, lv, &input_lits, &lroots);
    let rlit = encode_cone(&mut solver, rv, &input_lits, &rroots);

    let mut diff: Vec<Lit> = Vec::with_capacity(lroots.len());
    for (k, &lo) in lroots.iter().enumerate() {
        let ro = rroots[k];
        let d = Lit::pos(solver.new_var());
        xor3(
            &mut solver,
            d,
            llit[lo].expect("left output encoded"),
            rlit[ro].expect("right output encoded"),
        );
        diff.push(d);
    }
    if diff.is_empty() {
        // No outputs on either side: vacuously equivalent.
        return Ok(EquivVerdict::Equivalent);
    }
    solver.add_clause(&diff);

    match solver.solve(conflict_limit) {
        Verdict::Unsat => Ok(EquivVerdict::Equivalent),
        Verdict::Unknown => Ok(EquivVerdict::Undecided),
        Verdict::Sat => {
            let witness: Vec<bool> = input_lits
                .iter()
                .map(|l| solver.value(l.var()).unwrap_or(false))
                .collect();
            Ok(EquivVerdict::Inequivalent(witness))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adi_netlist::{bench_format, GateKind, NetlistBuilder};

    const C17: &str = "
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

    fn c17() -> CompiledCircuit {
        CompiledCircuit::compile(bench_format::parse(C17, "c17").unwrap())
    }

    /// `y = a OR (a AND b)`: the AND gate is redundant logic (`y == a`).
    fn redundant_fixture() -> (CompiledCircuit, adi_netlist::NodeId) {
        let mut b = NetlistBuilder::new("red");
        let a = b.add_input("a");
        let bb = b.add_input("b");
        let t = b.add_gate(GateKind::And, "t", &[a, bb]).unwrap();
        let y = b.add_gate(GateKind::Or, "y", &[a, t]).unwrap();
        b.mark_output(y);
        (CompiledCircuit::compile(b.build().unwrap()), t)
    }

    #[test]
    fn known_redundant_fault_proved_unsat() {
        let (circuit, t) = redundant_fixture();
        let verdict = prove_fault(&circuit, Fault::stem_at(t, false), DEFAULT_CONFLICT_LIMIT);
        assert_eq!(verdict, FaultVerdict::Redundant);
    }

    #[test]
    fn testable_fault_yields_a_cube() {
        // t stuck-at-1 forces y = 1; good y = a, so a = 0 distinguishes.
        let (circuit, t) = redundant_fixture();
        match prove_fault(&circuit, Fault::stem_at(t, true), DEFAULT_CONFLICT_LIMIT) {
            FaultVerdict::Testable(cube) => assert_eq!(cube.get(0), Some(false)),
            other => panic!("expected testable, got {other:?}"),
        }
    }

    #[test]
    fn every_c17_fault_is_testable() {
        // c17 is fully testable: no collapsed fault may be redundant.
        let circuit = c17();
        for (_, fault) in adi_netlist::fault::FaultList::collapsed(circuit.netlist()).iter() {
            match prove_fault(&circuit, fault, DEFAULT_CONFLICT_LIMIT) {
                FaultVerdict::Testable(_) => {}
                other => panic!("{fault}: expected testable, got {other:?}"),
            }
        }
    }

    #[test]
    fn circuit_is_equivalent_to_itself() {
        let circuit = c17();
        assert_eq!(
            check_equiv(&circuit, &circuit, DEFAULT_CONFLICT_LIMIT),
            Ok(EquivVerdict::Equivalent)
        );
    }

    #[test]
    fn single_gate_mutation_is_inequivalent_with_witness() {
        let circuit = c17();
        let mutated = CompiledCircuit::compile(
            bench_format::parse(&C17.replace("G10 = NAND(G1, G3)", "G10 = NOR(G1, G3)"), "c17m")
                .unwrap(),
        );
        match check_equiv(&circuit, &mutated, DEFAULT_CONFLICT_LIMIT) {
            Ok(EquivVerdict::Inequivalent(witness)) => {
                assert_eq!(witness.len(), circuit.view().inputs().len());
            }
            other => panic!("expected inequivalent, got {other:?}"),
        }
    }

    #[test]
    fn interface_mismatch_is_an_error() {
        let circuit = c17();
        let (small, _) = redundant_fixture();
        assert_eq!(
            check_equiv(&circuit, &small, DEFAULT_CONFLICT_LIMIT),
            Err(EquivError::InputCountMismatch(5, 2))
        );
    }
}
