//! Dynamic fault ordering (the paper's `Fdynm` construction).
//!
//! The dynamic procedure simulates fault dropping during the ordering
//! itself: each time a fault `f` is appended to the order, it is assumed
//! dropped, so `ndet(u)` is decremented for every `u ∈ D(f)` and the
//! accidental detection indices of the remaining faults are recomputed.
//!
//! Because `ndet` values only ever decrease, `ADI` values are monotone
//! non-increasing during the process. This implementation exploits the
//! monotonicity with a **lazy bucket queue**: faults sit in buckets indexed
//! by their last-known ADI; when a fault is popped from the current
//! maximum bucket its ADI is recomputed, and it is either selected (value
//! unchanged) or re-filed into a lower bucket (value became stale). Total
//! work is `O(Σ|D(f)| · (1 + staleness))`, far below the naive
//! `O(n² · |U|)` rescan.

use adi_netlist::fault::FaultId;

use crate::AdiAnalysis;

/// Computes the dynamic decreasing-ADI order over the faults **detected**
/// by `U` (zero-ADI faults are excluded; callers append or prepend them
/// per the `Fdynm`/`F0dynm` convention).
///
/// Ties between equal current ADI values are broken by original fault
/// order, making the result deterministic.
///
/// # Examples
///
/// ```
/// use adi_core::{dynamic::dynamic_order, AdiAnalysis, AdiConfig};
/// use adi_netlist::{bench_format, CompiledCircuit};
/// use adi_sim::PatternSet;
///
/// # fn main() -> Result<(), adi_netlist::NetlistError> {
/// let n = bench_format::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and2")?;
/// let circuit = CompiledCircuit::compile(n);
/// let faults = circuit.collapsed_faults().clone();
/// let adi = AdiAnalysis::for_circuit(&circuit, &faults, &PatternSet::exhaustive(2), AdiConfig::default());
/// let order = dynamic_order(&adi);
/// assert_eq!(order.len(), faults.len()); // all faults detected here
/// # Ok(())
/// # }
/// ```
pub fn dynamic_order(analysis: &AdiAnalysis) -> Vec<FaultId> {
    dynamic_order_traced(analysis).order
}

/// A trace of the dynamic ordering: the order plus the current ADI of each
/// fault at the moment it was selected (used by tests, the Section-2
/// walkthrough harness, and ablation tooling).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DynamicTrace {
    /// Selected faults, most attractive first.
    pub order: Vec<FaultId>,
    /// `selected_adi[i]` is the (updated) ADI of `order[i]` when selected.
    pub selected_adi: Vec<u32>,
}

/// Like [`dynamic_order`] but also reports the ADI value at each
/// selection.
pub fn dynamic_order_traced(analysis: &AdiAnalysis) -> DynamicTrace {
    let n = analysis.num_faults();
    let mut ndet: Vec<u32> = analysis.ndet_counts().to_vec();

    // Current ADI of a fault under the decremented counts.
    let current_adi = |f: FaultId, ndet: &[u32]| -> u32 {
        analysis
            .detecting_patterns(f)
            .map(|u| ndet[u])
            .min()
            .unwrap_or(0)
    };

    let initial_max = (0..n)
        .map(FaultId::new)
        .map(|f| analysis.adi(f))
        .max()
        .unwrap_or(0) as usize;
    // Each bucket is a min-heap on fault index so equal-ADI ties always
    // resolve to the earliest original fault, matching the naive greedy
    // selection exactly.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut buckets: Vec<BinaryHeap<Reverse<FaultId>>> =
        (0..=initial_max).map(|_| BinaryHeap::new()).collect();

    let mut detected_count = 0usize;
    for idx in 0..n {
        let f = FaultId::new(idx);
        let a = analysis.adi(f);
        if a > 0 {
            buckets[a as usize].push(Reverse(f));
            detected_count += 1;
        }
    }

    let mut order = Vec::with_capacity(detected_count);
    let mut selected_adi = Vec::with_capacity(detected_count);
    let mut cur = initial_max;
    while order.len() < detected_count {
        while cur > 0 && buckets[cur].is_empty() {
            cur -= 1;
        }
        if cur == 0 {
            // Unreachable: ndet(u) for u in D(f) counts f itself until f
            // is selected, so a detected, unselected fault has ADI >= 1.
            debug_assert!(buckets[0].is_empty());
            break;
        }
        let Reverse(f) = buckets[cur].pop().expect("bucket nonempty");
        let a = current_adi(f, &ndet);
        debug_assert!(a as usize <= cur, "ADI must be monotone non-increasing");
        if (a as usize) < cur {
            buckets[a as usize].push(Reverse(f)); // stale: re-file
            continue;
        }
        // Select f and simulate its drop.
        order.push(f);
        selected_adi.push(a);
        for u in analysis.detecting_patterns(f) {
            debug_assert!(ndet[u] > 0);
            ndet[u] -= 1;
        }
    }

    DynamicTrace {
        order,
        selected_adi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdiConfig, AdiEstimator};
    use adi_netlist::fault::FaultList;
    use adi_netlist::bench_format;
    use adi_sim::{DetectionMatrix, PatternSet};

    const C17: &str = "
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

    fn c17_analysis() -> AdiAnalysis {
        let n = bench_format::parse(C17, "c17").unwrap();
        let faults = FaultList::collapsed(&n);
        AdiAnalysis::for_circuit(
            &adi_netlist::CompiledCircuit::compile(n.clone()),
            &faults,
            &PatternSet::exhaustive(5),
            AdiConfig::default(),
        )
    }

    /// Reference implementation: naive O(n^2) greedy selection.
    fn naive_dynamic(analysis: &AdiAnalysis) -> Vec<FaultId> {
        let n = analysis.num_faults();
        let mut ndet: Vec<u32> = analysis.ndet_counts().to_vec();
        let mut remaining: Vec<FaultId> = (0..n)
            .map(FaultId::new)
            .filter(|&f| analysis.adi(f) > 0)
            .collect();
        let mut order = Vec::new();
        while !remaining.is_empty() {
            let (pos, &best) = remaining
                .iter()
                .enumerate()
                .max_by(|(ia, &a), (ib, &b)| {
                    let adi_a = analysis
                        .detecting_patterns(a)
                        .map(|u| ndet[u])
                        .min()
                        .unwrap();
                    let adi_b = analysis
                        .detecting_patterns(b)
                        .map(|u| ndet[u])
                        .min()
                        .unwrap();
                    // max by value, ties favour the earlier fault (smaller
                    // index => later in max_by comparison must win), so
                    // compare (value, Reverse(position)).
                    (adi_a, std::cmp::Reverse(ia))
                        .cmp(&(adi_b, std::cmp::Reverse(ib)))
                })
                .unwrap();
            order.push(best);
            for u in analysis.detecting_patterns(best) {
                ndet[u] -= 1;
            }
            remaining.remove(pos);
        }
        order
    }

    #[test]
    fn matches_naive_reference_on_c17() {
        let analysis = c17_analysis();
        let fast = dynamic_order(&analysis);
        let naive = naive_dynamic(&analysis);
        assert_eq!(fast, naive);
    }

    #[test]
    fn selected_values_are_nonincreasing() {
        let analysis = c17_analysis();
        let trace = dynamic_order_traced(&analysis);
        assert!(trace
            .selected_adi
            .windows(2)
            .all(|w| w[0] >= w[1]),
            "{:?}",
            trace.selected_adi
        );
    }

    #[test]
    fn first_selection_has_global_max_adi() {
        let analysis = c17_analysis();
        let trace = dynamic_order_traced(&analysis);
        let max = (0..analysis.num_faults())
            .map(FaultId::new)
            .map(|f| analysis.adi(f))
            .max()
            .unwrap();
        assert_eq!(trace.selected_adi[0], max);
        assert_eq!(analysis.adi(trace.order[0]), max);
    }

    #[test]
    fn covers_exactly_detected_faults() {
        let analysis = c17_analysis();
        let order = dynamic_order(&analysis);
        let detected: Vec<FaultId> = (0..analysis.num_faults())
            .map(FaultId::new)
            .filter(|&f| analysis.detected(f))
            .collect();
        assert_eq!(order.len(), detected.len());
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(sorted, detected);
    }

    /// Hand-built miniature mirroring the paper's Section-3 walkthrough
    /// mechanics: selecting a fault lowers ndet of its vectors and thereby
    /// the ADI of faults sharing those vectors.
    #[test]
    fn hand_example_with_shared_vectors() {
        // 3 faults, 2 vectors.
        // D(f0) = {u0};      ndet contribution
        // D(f1) = {u0, u1};
        // D(f2) = {u1};
        // ndet(u0) = 2, ndet(u1) = 2.
        // Initial ADI: f0=2, f1=2, f2=2. Tie broken by original order: f0
        // first. After f0: ndet(u0)=1 -> ADI(f1)=1, ADI(f2)=2 -> f2 next,
        // then f1.
        let mut m = DetectionMatrix::new(3, 2);
        m.set(FaultId::new(0), 0);
        m.set(FaultId::new(1), 0);
        m.set(FaultId::new(1), 1);
        m.set(FaultId::new(2), 1);
        let analysis = AdiAnalysis::from_matrix(
            m,
            AdiConfig {
                estimator: AdiEstimator::MinNdet,
                ..AdiConfig::default()
            },
        );
        let trace = dynamic_order_traced(&analysis);
        let ids: Vec<usize> = trace.order.iter().map(|f| f.index()).collect();
        assert_eq!(ids, vec![0, 2, 1]);
        assert_eq!(trace.selected_adi, vec![2, 2, 1]);
    }

    #[test]
    fn empty_analysis_yields_empty_order() {
        let analysis = AdiAnalysis::from_matrix(
            DetectionMatrix::new(0, 0),
            AdiConfig::default(),
        );
        assert!(dynamic_order(&analysis).is_empty());
    }
}
