//! The six fault orders of Section 3.

use std::fmt;

use adi_netlist::fault::FaultId;

use crate::dynamic::dynamic_order;
use crate::AdiAnalysis;

/// The fault orders defined by the paper (Section 3).
///
/// | Variant | Paper name | Zero-ADI faults | Non-zero faults |
/// |---------|-----------|-----------------|-----------------|
/// | [`Original`](Self::Original) | `Forig` | — | circuit-description order |
/// | [`Incr0`](Self::Incr0) | `Fincr0` | last | increasing ADI |
/// | [`Decr`](Self::Decr) | `Fdecr` | last | decreasing ADI |
/// | [`Decr0`](Self::Decr0) | `F0decr` | first | decreasing ADI |
/// | [`Dynamic`](Self::Dynamic) | `Fdynm` | last | decreasing ADI with dynamic `ndet` updates |
/// | [`Dynamic0`](Self::Dynamic0) | `F0dynm` | first | decreasing ADI with dynamic `ndet` updates |
///
/// # Examples
///
/// ```
/// use adi_core::FaultOrdering;
///
/// assert_eq!(FaultOrdering::Dynamic0.to_string(), "0dynm");
/// assert_eq!(FaultOrdering::ALL.len(), 6);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultOrdering {
    /// `Forig`: faults in their original (list) order.
    Original,
    /// `Fincr0`: increasing ADI, zero-ADI faults last (the adversarial
    /// control the paper expects to be worst).
    Incr0,
    /// `Fdecr`: decreasing ADI, zero-ADI faults last.
    Decr,
    /// `F0decr`: zero-ADI faults first, then decreasing ADI.
    Decr0,
    /// `Fdynm`: dynamically updated decreasing ADI, zero-ADI faults last.
    Dynamic,
    /// `F0dynm`: zero-ADI faults first, then the dynamic order.
    Dynamic0,
}

impl FaultOrdering {
    /// All orderings in the order the paper discusses them.
    pub const ALL: [FaultOrdering; 6] = [
        FaultOrdering::Original,
        FaultOrdering::Incr0,
        FaultOrdering::Decr,
        FaultOrdering::Decr0,
        FaultOrdering::Dynamic,
        FaultOrdering::Dynamic0,
    ];

    /// The paper's compact column label (`orig`, `incr0`, `decr`,
    /// `0decr`, `dynm`, `0dynm`).
    pub fn label(self) -> &'static str {
        match self {
            FaultOrdering::Original => "orig",
            FaultOrdering::Incr0 => "incr0",
            FaultOrdering::Decr => "decr",
            FaultOrdering::Decr0 => "0decr",
            FaultOrdering::Dynamic => "dynm",
            FaultOrdering::Dynamic0 => "0dynm",
        }
    }

    /// Parses a paper label (the inverse of [`label`](Self::label)).
    pub fn from_label(label: &str) -> Option<FaultOrdering> {
        FaultOrdering::ALL
            .into_iter()
            .find(|o| o.label() == label)
    }
}

impl fmt::Display for FaultOrdering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Produces the ordered target-fault list for `ordering`.
///
/// The returned vector is a permutation of all fault ids. Ties between
/// equal ADI values are broken by original fault order, making every
/// ordering deterministic.
///
/// # Examples
///
/// ```
/// use adi_core::{order_faults, AdiAnalysis, AdiConfig, FaultOrdering};
/// use adi_netlist::{bench_format, CompiledCircuit};
/// use adi_sim::PatternSet;
///
/// # fn main() -> Result<(), adi_netlist::NetlistError> {
/// let n = bench_format::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and2")?;
/// let circuit = CompiledCircuit::compile(n);
/// let faults = circuit.collapsed_faults().clone();
/// let adi = AdiAnalysis::for_circuit(&circuit, &faults, &PatternSet::exhaustive(2), AdiConfig::default());
/// let order = order_faults(&adi, FaultOrdering::Decr);
/// // Decreasing ADI: the first fault has the maximal index.
/// assert!(adi.adi(order[0]) >= adi.adi(order[order.len() - 1]));
/// # Ok(())
/// # }
/// ```
pub fn order_faults(analysis: &AdiAnalysis, ordering: FaultOrdering) -> Vec<FaultId> {
    let n = analysis.num_faults();
    let all: Vec<FaultId> = (0..n).map(FaultId::new).collect();
    let zeros: Vec<FaultId> = all
        .iter()
        .copied()
        .filter(|&f| analysis.adi(f) == 0)
        .collect();
    let nonzeros: Vec<FaultId> = all
        .iter()
        .copied()
        .filter(|&f| analysis.adi(f) > 0)
        .collect();

    match ordering {
        FaultOrdering::Original => all,
        FaultOrdering::Incr0 => {
            let mut v = nonzeros;
            v.sort_by_key(|&f| (analysis.adi(f), f));
            v.extend(zeros);
            v
        }
        FaultOrdering::Decr => {
            let mut v = nonzeros;
            v.sort_by_key(|&f| (std::cmp::Reverse(analysis.adi(f)), f));
            v.extend(zeros);
            v
        }
        FaultOrdering::Decr0 => {
            let mut v = zeros;
            let mut nz = nonzeros;
            nz.sort_by_key(|&f| (std::cmp::Reverse(analysis.adi(f)), f));
            v.extend(nz);
            v
        }
        FaultOrdering::Dynamic => {
            let mut v = dynamic_order(analysis);
            v.extend(zeros);
            v
        }
        FaultOrdering::Dynamic0 => {
            let mut v = zeros;
            v.extend(dynamic_order(analysis));
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdiConfig;
    use adi_netlist::fault::FaultList;
    use adi_netlist::{GateKind, NetlistBuilder};
    use adi_sim::PatternSet;

    fn sample() -> AdiAnalysis {
        // A circuit with a redundant fault so that zero-ADI faults exist.
        let mut b = NetlistBuilder::new("mix");
        let a = b.add_input("a");
        let c = b.add_input("b");
        let na = b.add_gate(GateKind::Not, "na", &[a]).unwrap();
        let t = b.add_gate(GateKind::And, "t", &[a, na]).unwrap(); // == 0
        let y = b.add_gate(GateKind::Or, "y", &[c, t]).unwrap();
        b.mark_output(y);
        let n = b.build().unwrap();
        let faults = FaultList::full(&n);
        AdiAnalysis::for_circuit(
            &adi_netlist::CompiledCircuit::compile(n.clone()),
            &faults,
            &PatternSet::exhaustive(2),
            AdiConfig::default(),
        )
    }

    fn assert_permutation(order: &[FaultId], n: usize) {
        assert_eq!(order.len(), n);
        let mut seen = vec![false; n];
        for &f in order {
            assert!(!seen[f.index()], "duplicate {f}");
            seen[f.index()] = true;
        }
    }

    #[test]
    fn every_ordering_is_a_permutation() {
        let adi = sample();
        for ord in FaultOrdering::ALL {
            let order = order_faults(&adi, ord);
            assert_permutation(&order, adi.num_faults());
        }
    }

    #[test]
    fn decr_is_nonincreasing_with_zeros_last() {
        let adi = sample();
        let order = order_faults(&adi, FaultOrdering::Decr);
        let values: Vec<u32> = order.iter().map(|&f| adi.adi(f)).collect();
        let first_zero = values.iter().position(|&v| v == 0);
        let nz = &values[..first_zero.unwrap_or(values.len())];
        assert!(nz.windows(2).all(|w| w[0] >= w[1]), "{values:?}");
        if let Some(fz) = first_zero {
            assert!(values[fz..].iter().all(|&v| v == 0));
        }
    }

    #[test]
    fn incr0_is_nondecreasing_with_zeros_last() {
        let adi = sample();
        let order = order_faults(&adi, FaultOrdering::Incr0);
        let values: Vec<u32> = order.iter().map(|&f| adi.adi(f)).collect();
        let first_zero = values.iter().position(|&v| v == 0).unwrap_or(values.len());
        let nz = &values[..first_zero];
        assert!(nz.windows(2).all(|w| w[0] <= w[1]), "{values:?}");
        assert!(values[first_zero..].iter().all(|&v| v == 0));
    }

    #[test]
    fn zero_placement_differs_between_pairs() {
        let adi = sample();
        let has_zero = (0..adi.num_faults())
            .map(FaultId::new)
            .any(|f| adi.adi(f) == 0);
        assert!(has_zero, "test circuit must have zero-ADI faults");
        let decr0 = order_faults(&adi, FaultOrdering::Decr0);
        assert_eq!(adi.adi(decr0[0]), 0, "F0decr starts with zero-ADI faults");
        let dyn0 = order_faults(&adi, FaultOrdering::Dynamic0);
        assert_eq!(adi.adi(dyn0[0]), 0);
        let decr = order_faults(&adi, FaultOrdering::Decr);
        assert_eq!(adi.adi(*decr.last().unwrap()), 0, "Fdecr ends with zeros");
        let dynm = order_faults(&adi, FaultOrdering::Dynamic);
        assert_eq!(adi.adi(*dynm.last().unwrap()), 0);
    }

    #[test]
    fn original_preserves_list_order() {
        let adi = sample();
        let order = order_faults(&adi, FaultOrdering::Original);
        for (i, &f) in order.iter().enumerate() {
            assert_eq!(f.index(), i);
        }
    }

    #[test]
    fn decr_and_incr0_are_reverses_over_nonzero_values() {
        let adi = sample();
        let decr: Vec<u32> = order_faults(&adi, FaultOrdering::Decr)
            .iter()
            .map(|&f| adi.adi(f))
            .filter(|&v| v > 0)
            .collect();
        let mut incr: Vec<u32> = order_faults(&adi, FaultOrdering::Incr0)
            .iter()
            .map(|&f| adi.adi(f))
            .filter(|&v| v > 0)
            .collect();
        incr.reverse();
        assert_eq!(decr, incr);
    }

    #[test]
    fn labels_roundtrip() {
        for ord in FaultOrdering::ALL {
            assert_eq!(FaultOrdering::from_label(ord.label()), Some(ord));
        }
        assert_eq!(FaultOrdering::from_label("nope"), None);
    }
}
