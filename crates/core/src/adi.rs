//! Computation of the accidental detection index (Section 2 of the paper).

use adi_netlist::fault::{FaultId, FaultList};
use adi_netlist::CompiledCircuit;
use adi_sim::{DetectionMatrix, EngineKind, FaultSimulator, PatternSet, SimWidth};

/// How `ADI(f)` is aggregated from the detection counts of the vectors in
/// `D(f)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum AdiEstimator {
    /// The paper's conservative definition: the minimum `ndet(u)` over
    /// `u ∈ D(f)`.
    #[default]
    MinNdet,
    /// The mean `ndet(u)` over `u ∈ D(f)`, rounded down — the alternative
    /// the paper mentions in Section 2.
    MeanNdet,
}

/// Configuration for [`AdiAnalysis::for_circuit`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct AdiConfig {
    /// Aggregation over `D(f)`.
    pub estimator: AdiEstimator,
    /// If `Some(n)`, approximate the no-drop simulation by n-detection
    /// simulation: each fault contributes only its first `n` detections
    /// to `ndet(u)` and `D(f)`. `None` reproduces the paper's exact
    /// no-drop computation.
    pub n_detect_cap: Option<u32>,
    /// Number of OS threads for the underlying no-drop fault simulation
    /// (0 or 1 = serial).
    pub threads: usize,
    /// Which fault-simulation engine computes the detection matrix. The
    /// engines are bit-identical; [`EngineKind::StemRegion`] (the
    /// default) pays the propagation cost per fanout-free region instead
    /// of per fault.
    pub engine: EngineKind,
    /// Simulation word width of the stem-region engine (every width is
    /// bit-identical; wider words amortize the per-block sweeps over
    /// more patterns). The per-fault engine ignores this.
    pub width: SimWidth,
}

/// Summary statistics for one circuit's ADI values (the paper's Table 4
/// row: `ADImin`, `ADImax`, and their ratio over detected faults).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AdiSummary {
    /// Minimum ADI over faults detected by `U`.
    pub min: u32,
    /// Maximum ADI over faults detected by `U`.
    pub max: u32,
    /// `max / min` (0 when no fault is detected).
    pub ratio: f64,
    /// Number of faults detected by `U`.
    pub detected: usize,
    /// Total faults.
    pub total: usize,
}

/// The accidental detection analysis of one circuit under a vector set `U`.
///
/// Holds the full fault × vector [`DetectionMatrix`] (the sets `D(f)`),
/// the per-vector counts `ndet(u)`, and the per-fault index `ADI(f)`.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Clone, PartialEq, Debug)]
pub struct AdiAnalysis {
    matrix: DetectionMatrix,
    ndet: Vec<u32>,
    adi: Vec<u32>,
    config: AdiConfig,
}

impl AdiAnalysis {
    /// Simulates `faults` under `patterns` without dropping over an
    /// already-compiled circuit and computes all indices. This is the
    /// primary entry point: all per-circuit artifacts come from the
    /// compilation.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width does not match the circuit.
    pub fn for_circuit(
        circuit: &CompiledCircuit,
        faults: &FaultList,
        patterns: &PatternSet,
        config: AdiConfig,
    ) -> Self {
        let sim = FaultSimulator::for_circuit_with_engine(circuit, faults, config.engine)
            .with_width(config.width);
        let mut matrix = if config.threads > 1 {
            sim.no_drop_matrix_parallel(patterns, config.threads)
        } else {
            sim.no_drop_matrix(patterns)
        };
        if let Some(cap) = config.n_detect_cap {
            matrix = cap_matrix(&matrix, cap);
        }
        Self::from_matrix(matrix, config)
    }

    /// Builds the analysis from a precomputed detection matrix.
    pub fn from_matrix(matrix: DetectionMatrix, config: AdiConfig) -> Self {
        let ndet = matrix.ndet_counts();
        let n_faults = matrix.num_faults();
        let mut adi = vec![0u32; n_faults];
        for (f, slot) in adi.iter_mut().enumerate() {
            let id = FaultId::new(f);
            *slot = match config.estimator {
                AdiEstimator::MinNdet => matrix
                    .detecting_patterns(id)
                    .map(|u| ndet[u])
                    .min()
                    .unwrap_or(0),
                AdiEstimator::MeanNdet => {
                    let (mut sum, mut count) = (0u64, 0u64);
                    for u in matrix.detecting_patterns(id) {
                        sum += u64::from(ndet[u]);
                        count += 1;
                    }
                    sum.checked_div(count).unwrap_or(0) as u32
                }
            };
        }
        AdiAnalysis {
            matrix,
            ndet,
            adi,
            config,
        }
    }

    /// The configuration used.
    pub fn config(&self) -> AdiConfig {
        self.config
    }

    /// `ADI(f)`: zero iff `U` does not detect `f`; at least 1 otherwise
    /// (the fault itself is counted in `ndet(u)`).
    ///
    /// # Panics
    ///
    /// Panics if `fault` is out of range.
    #[inline]
    pub fn adi(&self, fault: FaultId) -> u32 {
        self.adi[fault.index()]
    }

    /// All ADI values, indexed by fault id.
    pub fn adi_values(&self) -> &[u32] {
        &self.adi
    }

    /// `ndet(u)`: the number of faults vector `u` detects.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range.
    #[inline]
    pub fn ndet(&self, pattern: usize) -> u32 {
        self.ndet[pattern]
    }

    /// All `ndet(u)` counts, indexed by pattern.
    pub fn ndet_counts(&self) -> &[u32] {
        &self.ndet
    }

    /// Returns `true` if `U` detects `fault`.
    pub fn detected(&self, fault: FaultId) -> bool {
        self.matrix.detected_any(fault)
    }

    /// Iterates over `D(f)`: the vectors detecting `fault`.
    pub fn detecting_patterns(&self, fault: FaultId) -> impl Iterator<Item = usize> + '_ {
        self.matrix.detecting_patterns(fault)
    }

    /// The underlying detection matrix.
    pub fn matrix(&self) -> &DetectionMatrix {
        &self.matrix
    }

    /// Number of faults.
    pub fn num_faults(&self) -> usize {
        self.matrix.num_faults()
    }

    /// Number of vectors in `U`.
    pub fn num_patterns(&self) -> usize {
        self.matrix.num_patterns()
    }

    /// Table-4 style summary over faults detected by `U`.
    pub fn summary(&self) -> AdiSummary {
        let detected: Vec<u32> = (0..self.num_faults())
            .map(FaultId::new)
            .filter(|&f| self.detected(f))
            .map(|f| self.adi(f))
            .collect();
        let min = detected.iter().copied().min().unwrap_or(0);
        let max = detected.iter().copied().max().unwrap_or(0);
        AdiSummary {
            min,
            max,
            ratio: if min == 0 {
                0.0
            } else {
                f64::from(max) / f64::from(min)
            },
            detected: detected.len(),
            total: self.num_faults(),
        }
    }
}

/// Keeps only the first `cap` detections of each fault (row-wise), the
/// n-detection approximation of the no-drop matrix.
fn cap_matrix(matrix: &DetectionMatrix, cap: u32) -> DetectionMatrix {
    let mut out = DetectionMatrix::new(matrix.num_faults(), matrix.num_patterns());
    for f in 0..matrix.num_faults() {
        let id = FaultId::new(f);
        for (count, u) in matrix.detecting_patterns(id).enumerate() {
            if count as u32 >= cap {
                break;
            }
            out.set(id, u);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adi_netlist::{bench_format, Netlist};

    const AND2: &str = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";

    fn and2_analysis() -> (Netlist, FaultList, AdiAnalysis) {
        let n = bench_format::parse(AND2, "and2").unwrap();
        let faults = FaultList::collapsed(&n);
        let u = PatternSet::exhaustive(2);
        let adi = AdiAnalysis::for_circuit(&CompiledCircuit::compile(n.clone()), &faults, &u, AdiConfig::default());
        (n, faults, adi)
    }

    /// Hand-computed ground truth for the collapsed AND2 fault list over
    /// the exhaustive set. Collapsed faults: {a/0,b/0,y/0} (rep a/0), a/1,
    /// b/1, y/1.
    ///
    /// Vector (a,b) with decimal a=MSB: 0=(0,0), 1=(0,1), 2=(1,0), 3=(1,1).
    /// Detections: a0-class by (1,1); a1 by (0,1); b1 by (1,0); y1 by
    /// (0,0),(0,1),(1,0).
    #[test]
    fn and2_ndet_and_adi_hand_checked() {
        let (_, faults, adi) = and2_analysis();
        assert_eq!(adi.ndet_counts(), &[1, 2, 2, 1]);
        // Identify faults by their detection rows rather than list order.
        let mut seen = vec![];
        for f in faults.ids() {
            let d: Vec<usize> = adi.detecting_patterns(f).collect();
            let a = adi.adi(f);
            seen.push((d, a));
        }
        assert!(seen.contains(&(vec![3], 1))); // a/0 class: D={3}, ADI=1
        assert!(seen.contains(&(vec![1], 2))); // a/1: D={1}, ndet=2
        assert!(seen.contains(&(vec![2], 2))); // b/1
        assert!(seen.contains(&(vec![0, 1, 2], 1))); // y/1: min(1,2,2)=1
    }

    #[test]
    fn adi_zero_iff_undetected() {
        // A redundant fault is never detected => ADI = 0.
        let src = "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = OR(a, na)\n";
        let n = bench_format::parse(src, "taut").unwrap();
        let faults = FaultList::full(&n);
        let u = PatternSet::exhaustive(1);
        let adi = AdiAnalysis::for_circuit(&CompiledCircuit::compile(n.clone()), &faults, &u, AdiConfig::default());
        for f in faults.ids() {
            assert_eq!(adi.adi(f) == 0, !adi.detected(f), "fault {f}");
        }
        // y stuck-at-1 (constant circuit) must be among the undetected.
        assert!(faults.ids().any(|f| adi.adi(f) == 0));
    }

    #[test]
    fn adi_bounded_by_ndet_range() {
        let (_, faults, adi) = and2_analysis();
        let max_ndet = adi.ndet_counts().iter().copied().max().unwrap();
        for f in faults.ids() {
            assert!(adi.adi(f) <= max_ndet);
            if adi.detected(f) {
                assert!(adi.adi(f) >= 1);
            }
        }
    }

    #[test]
    fn mean_estimator_at_least_min() {
        let n = bench_format::parse(AND2, "and2").unwrap();
        let faults = FaultList::collapsed(&n);
        let u = PatternSet::exhaustive(2);
        let min = AdiAnalysis::for_circuit(&CompiledCircuit::compile(n.clone()), &faults, &u, AdiConfig::default());
        let mean = AdiAnalysis::for_circuit(
            &CompiledCircuit::compile(n.clone()),
            &faults,
            &u,
            AdiConfig {
                estimator: AdiEstimator::MeanNdet,
                ..AdiConfig::default()
            },
        );
        for f in faults.ids() {
            assert!(mean.adi(f) >= min.adi(f), "fault {f}");
        }
        // y/1 has D = {0,1,2} with ndet {1,2,2}: mean floor = 1, min = 1.
        // a/1 has singleton D: estimators agree.
    }

    #[test]
    fn n_detect_cap_reduces_ndet() {
        let n = bench_format::parse(AND2, "and2").unwrap();
        let faults = FaultList::collapsed(&n);
        let u = PatternSet::exhaustive(2);
        let exact = AdiAnalysis::for_circuit(&CompiledCircuit::compile(n.clone()), &faults, &u, AdiConfig::default());
        let capped = AdiAnalysis::for_circuit(
            &CompiledCircuit::compile(n.clone()),
            &faults,
            &u,
            AdiConfig {
                n_detect_cap: Some(1),
                ..AdiConfig::default()
            },
        );
        // Capped ndet counts are pointwise <= exact.
        for (c, e) in capped.ndet_counts().iter().zip(exact.ndet_counts()) {
            assert!(c <= e);
        }
        // Every detected fault remains detected (cap >= 1).
        for f in faults.ids() {
            assert_eq!(capped.detected(f), exact.detected(f));
        }
    }

    #[test]
    fn parallel_threads_match_serial() {
        let (n, faults, serial) = and2_analysis();
        let u = PatternSet::exhaustive(2);
        let par = AdiAnalysis::for_circuit(
            &CompiledCircuit::compile(n.clone()),
            &faults,
            &u,
            AdiConfig {
                threads: 4,
                ..AdiConfig::default()
            },
        );
        assert_eq!(serial.adi_values(), par.adi_values());
        assert_eq!(serial.ndet_counts(), par.ndet_counts());
    }

    #[test]
    fn per_fault_engine_matches_default() {
        let (n, faults, stem) = and2_analysis();
        let u = PatternSet::exhaustive(2);
        let per_fault = AdiAnalysis::for_circuit(
            &CompiledCircuit::compile(n.clone()),
            &faults,
            &u,
            AdiConfig {
                engine: EngineKind::PerFault,
                ..AdiConfig::default()
            },
        );
        assert_eq!(stem.matrix(), per_fault.matrix());
        assert_eq!(stem.adi_values(), per_fault.adi_values());
        assert_eq!(stem.ndet_counts(), per_fault.ndet_counts());
    }

    #[test]
    fn every_width_matches_the_default_analysis() {
        let (n, faults, base) = and2_analysis();
        let u = PatternSet::exhaustive(2);
        for width in SimWidth::ALL {
            let wide = AdiAnalysis::for_circuit(
                &CompiledCircuit::compile(n.clone()),
                &faults,
                &u,
                AdiConfig {
                    width,
                    ..AdiConfig::default()
                },
            );
            assert_eq!(base.matrix(), wide.matrix(), "width {width}");
            assert_eq!(base.adi_values(), wide.adi_values(), "width {width}");
        }
    }

    #[test]
    fn summary_matches_hand_values() {
        let (_, _, adi) = and2_analysis();
        let s = adi.summary();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 2);
        assert!((s.ratio - 2.0).abs() < 1e-12);
        assert_eq!(s.detected, 4);
        assert_eq!(s.total, 4);
    }
}
