//! End-to-end experiment pipeline: the paper's Section-4 methodology.
//!
//! For one circuit: select `U` → compute ADI → build each requested fault
//! order → run the (compaction-free) ATPG per order → collect test counts,
//! wall-clock run times, coverage curves, and `AVE` values. The table and
//! figure harnesses in `adi-bench` are thin formatters over the
//! [`Experiment`] struct this module produces.
//!
//! The entry point is the builder: compile the circuit once
//! ([`CompiledCircuit::compile`]) and run
//! `Experiment::on(&circuit).config(cfg).run()`. Every stage — `U`
//! selection, the no-drop simulation behind the ADI, each ordering's
//! ATPG — shares that single compilation; the whole experiment performs
//! exactly one levelization (asserted by the repository's
//! compile-once counter test).

use std::time::{Duration, Instant};

use adi_netlist::fault::FaultId;
use adi_netlist::CompiledCircuit;
use adi_sim::CoverageCurve;
use adi_atpg::{TestGenConfig, TestGenResult, TestGenerator};

use crate::metrics::average_detection_position;
use crate::uset::{select_u_for, USetConfig};
use crate::{order_faults, AdiAnalysis, AdiConfig, AdiSummary, FaultOrdering};

/// Configuration for an [`Experiment`] run.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Selection of the random vector set `U`.
    pub uset: USetConfig,
    /// ADI computation options.
    pub adi: AdiConfig,
    /// ATPG options (backtrack limit, X-fill).
    pub testgen: TestGenConfig,
    /// The fault orders to run ATPG with.
    pub orderings: Vec<FaultOrdering>,
    /// Use the collapsed fault list (`true`, the usual choice) or the full
    /// fault universe.
    pub collapse_faults: bool,
    /// Run the per-ordering ATPG passes on one OS thread each (`true`,
    /// the default). The orderings are independent given the shared
    /// `Arc`-backed compilation, and every pass is deterministic, so the
    /// results are identical to the serial path (asserted by tests);
    /// only wall-clock timings vary.
    pub parallel_orderings: bool,
}

impl Default for ExperimentConfig {
    /// The paper's main experiment: `Forig`, `Fdynm`, `F0dynm`, `Fincr0`.
    fn default() -> Self {
        ExperimentConfig {
            uset: USetConfig::default(),
            adi: AdiConfig::default(),
            testgen: TestGenConfig::default(),
            orderings: vec![
                FaultOrdering::Original,
                FaultOrdering::Dynamic,
                FaultOrdering::Dynamic0,
                FaultOrdering::Incr0,
            ],
            collapse_faults: true,
            parallel_orderings: true,
        }
    }
}

/// The outcome of ATPG under one fault order.
#[derive(Clone, Debug)]
pub struct OrderingRun {
    /// Which order this is.
    pub ordering: FaultOrdering,
    /// The ordered fault list used.
    pub order: Vec<FaultId>,
    /// The ATPG outcome (tests, per-test detections, fault statuses).
    pub result: TestGenResult,
    /// The fault-coverage curve of the run.
    pub curve: CoverageCurve,
    /// `AVE_ord` of the curve.
    pub ave: f64,
    /// Wall-clock test-generation time (ordering construction excluded,
    /// matching the paper's `t.gen` accounting).
    pub testgen_time: Duration,
    /// Wall-clock time spent building the fault order itself.
    pub ordering_time: Duration,
}

impl OrderingRun {
    /// Number of tests generated under this order (the paper's Table 5).
    pub fn num_tests(&self) -> usize {
        self.result.num_tests()
    }
}

/// Everything the paper reports about one circuit.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Circuit name.
    pub circuit: String,
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of target faults.
    pub num_faults: usize,
    /// Size of the selected vector set `U` (Table 4 column `vec`).
    pub u_size: usize,
    /// Fault coverage of `U` at selection time.
    pub u_coverage: f64,
    /// ADI summary (Table 4 columns `min`, `max`, `ratio`).
    pub adi_summary: AdiSummary,
    /// Wall-clock time of `U` selection plus ADI computation.
    pub adi_time: Duration,
    /// One entry per requested ordering, in request order.
    pub runs: Vec<OrderingRun>,
}

impl Experiment {
    /// Starts a builder for an experiment over an already-compiled
    /// circuit. Every pipeline stage reuses the compilation's artifacts;
    /// no further levelization, FFR decomposition, fault enumeration, or
    /// SCOAP computation happens during the run.
    ///
    /// # Examples
    ///
    /// ```
    /// use adi_core::{Experiment, ExperimentConfig, FaultOrdering};
    /// use adi_netlist::{bench_format, CompiledCircuit};
    ///
    /// # fn main() -> Result<(), adi_netlist::NetlistError> {
    /// let n = bench_format::parse(
    ///     "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n", "nand2")?;
    /// let circuit = CompiledCircuit::compile(n);
    /// let exp = Experiment::on(&circuit).run();
    /// assert_eq!(exp.runs.len(), 4);
    /// let orig = exp.run_for(FaultOrdering::Original).unwrap();
    /// assert!(orig.result.coverage() > 0.99);
    ///
    /// // The same compilation serves any number of scenario runs.
    /// let decr = Experiment::on(&circuit)
    ///     .orderings(vec![FaultOrdering::Decr])
    ///     .run();
    /// assert_eq!(decr.runs.len(), 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn on(circuit: &CompiledCircuit) -> ExperimentBuilder<'_> {
        ExperimentBuilder {
            circuit,
            config: ExperimentConfig::default(),
        }
    }

    /// The run for `ordering`, if it was requested.
    pub fn run_for(&self, ordering: FaultOrdering) -> Option<&OrderingRun> {
        self.runs.iter().find(|r| r.ordering == ordering)
    }

    /// Relative test-generation time `RT_ord / RT_orig` (Table 6).
    /// Returns `None` when either run is missing or the baseline took no
    /// measurable time.
    pub fn relative_runtime(&self, ordering: FaultOrdering) -> Option<f64> {
        let base = self.run_for(FaultOrdering::Original)?.testgen_time;
        let this = self.run_for(ordering)?.testgen_time;
        let base_s = base.as_secs_f64();
        if base_s == 0.0 {
            None
        } else {
            Some(this.as_secs_f64() / base_s)
        }
    }

    /// Normalized steepness `AVE_ord / AVE_orig` (Table 7).
    pub fn relative_ave(&self, ordering: FaultOrdering) -> Option<f64> {
        let base = self.run_for(FaultOrdering::Original)?.ave;
        let this = self.run_for(ordering)?.ave;
        if base == 0.0 {
            None
        } else {
            Some(this / base)
        }
    }
}

/// Builder for an [`Experiment`] over one compiled circuit; created by
/// [`Experiment::on`].
///
/// Defaults to [`ExperimentConfig::default`] (the paper's main
/// experiment); override wholesale with
/// [`config`](ExperimentBuilder::config) or per-knob with the granular
/// setters, then call [`run`](ExperimentBuilder::run).
#[derive(Clone, Debug)]
pub struct ExperimentBuilder<'a> {
    circuit: &'a CompiledCircuit,
    config: ExperimentConfig,
}

impl<'a> ExperimentBuilder<'a> {
    /// Replaces the whole configuration.
    pub fn config(mut self, config: ExperimentConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the `U`-selection options.
    pub fn uset(mut self, uset: USetConfig) -> Self {
        self.config.uset = uset;
        self
    }

    /// Sets the ADI computation options.
    pub fn adi(mut self, adi: AdiConfig) -> Self {
        self.config.adi = adi;
        self
    }

    /// Sets the ATPG options.
    pub fn testgen(mut self, testgen: TestGenConfig) -> Self {
        self.config.testgen = testgen;
        self
    }

    /// Sets the total thread count of each per-ordering ATPG loop (the
    /// speculative first-win loop when `>= 2`; results are bit-identical
    /// at every value). Composes multiplicatively with
    /// [`parallel_orderings`](Self::parallel_orderings) — an experiment
    /// over `k` orderings at `atpg_threads: t` can occupy `k * t`
    /// threads — so prefer `parallel_orderings(false)` when `t` already
    /// saturates the machine.
    pub fn atpg_threads(mut self, threads: usize) -> Self {
        self.config.testgen.atpg_threads = threads.max(1);
        self
    }

    /// Sets the fault orders to run ATPG with.
    pub fn orderings(mut self, orderings: Vec<FaultOrdering>) -> Self {
        self.config.orderings = orderings;
        self
    }

    /// Chooses between the collapsed fault list (`true`, the default)
    /// and the full fault universe.
    pub fn collapse_faults(mut self, collapse: bool) -> Self {
        self.config.collapse_faults = collapse;
        self
    }

    /// Chooses between one OS thread per ordering (`true`, the default)
    /// and the serial path. Results are identical either way.
    pub fn parallel_orderings(mut self, parallel: bool) -> Self {
        self.config.parallel_orderings = parallel;
        self
    }

    /// Runs the full paper pipeline: select `U`, compute the ADI, build
    /// each requested order, and run ATPG per order — all on the shared
    /// compilation (the fault list itself comes from the compilation's
    /// cache). With [`parallel_orderings`](Self::parallel_orderings) set
    /// (the default), the independent per-ordering ATPG passes run on
    /// one thread each over the `Arc`-shared compilation; the results
    /// are deterministic and identical to the serial path.
    pub fn run(self) -> Experiment {
        let ExperimentBuilder { circuit, config } = self;
        let netlist = circuit.netlist();
        let faults = if config.collapse_faults {
            circuit.collapsed_faults()
        } else {
            circuit.full_faults()
        };

        let adi_start = Instant::now();
        let selection = select_u_for(circuit, faults, config.uset);
        let analysis = AdiAnalysis::for_circuit(circuit, faults, &selection.patterns, config.adi);
        let adi_time = adi_start.elapsed();

        let generator = TestGenerator::for_circuit(circuit, faults, config.testgen);
        let run_one = |ordering: FaultOrdering| -> OrderingRun {
            let t0 = Instant::now();
            let order = order_faults(&analysis, ordering);
            let ordering_time = t0.elapsed();
            let t1 = Instant::now();
            let result = generator.run(&order);
            let testgen_time = t1.elapsed();
            let curve = result.coverage_curve();
            let ave = average_detection_position(&curve);
            OrderingRun {
                ordering,
                order,
                result,
                curve,
                ave,
                testgen_time,
                ordering_time,
            }
        };
        let runs: Vec<OrderingRun> = if config.parallel_orderings && config.orderings.len() > 1 {
            // One thread per ordering: each pass only reads the shared
            // analysis and generator (the compilation is Arc-backed), so
            // request order is preserved by collecting joins in order.
            let run_one = &run_one;
            std::thread::scope(|scope| {
                let handles: Vec<_> = config
                    .orderings
                    .iter()
                    .map(|&ordering| scope.spawn(move || run_one(ordering)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("ordering worker panicked"))
                    .collect()
            })
        } else {
            config.orderings.iter().map(|&o| run_one(o)).collect()
        };

        Experiment {
            circuit: netlist.name().to_string(),
            num_inputs: netlist.num_inputs(),
            num_faults: faults.len(),
            u_size: selection.len(),
            u_coverage: selection.coverage,
            adi_summary: analysis.summary(),
            adi_time,
            runs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adi_netlist::bench_format;

    const C17: &str = "
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

    fn experiment() -> Experiment {
        let n = bench_format::parse(C17, "c17").unwrap();
        Experiment::on(&CompiledCircuit::compile(n)).run()
    }

    #[test]
    fn all_requested_orderings_run() {
        let e = experiment();
        assert_eq!(e.runs.len(), 4);
        for ord in [
            FaultOrdering::Original,
            FaultOrdering::Dynamic,
            FaultOrdering::Dynamic0,
            FaultOrdering::Incr0,
        ] {
            assert!(e.run_for(ord).is_some(), "{ord} missing");
        }
        assert!(e.run_for(FaultOrdering::Decr).is_none());
    }

    #[test]
    fn c17_full_coverage_under_every_order() {
        let e = experiment();
        for run in &e.runs {
            assert_eq!(
                run.result.num_detected(),
                e.num_faults,
                "{} left faults undetected",
                run.ordering
            );
            assert_eq!(run.curve.final_detected(), e.num_faults);
            assert!(run.ave >= 1.0, "AVE must be at least one test");
        }
    }

    #[test]
    fn exhaustive_u_for_tiny_circuit() {
        let e = experiment();
        assert_eq!(e.u_size, 32); // 5 inputs <= default threshold 6
        assert!((e.u_coverage - 1.0).abs() < 1e-12);
        // All faults detected by exhaustive U => min ADI >= 1.
        assert!(e.adi_summary.min >= 1);
        assert!(e.adi_summary.max >= e.adi_summary.min);
        assert_eq!(e.adi_summary.detected, e.num_faults);
    }

    #[test]
    fn relative_metrics_baseline_is_one() {
        let e = experiment();
        let r = e.relative_ave(FaultOrdering::Original).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_experiments() {
        let a = experiment();
        let b = experiment();
        for (ra, rb) in a.runs.iter().zip(&b.runs) {
            assert_eq!(ra.order, rb.order);
            assert_eq!(ra.result.tests, rb.result.tests);
            assert_eq!(ra.num_tests(), rb.num_tests());
        }
    }

    #[test]
    fn parallel_orderings_match_serial_exactly() {
        let n = bench_format::parse(C17, "c17").unwrap();
        let circuit = CompiledCircuit::compile(n);
        let parallel = Experiment::on(&circuit).parallel_orderings(true).run();
        let serial = Experiment::on(&circuit).parallel_orderings(false).run();
        assert_eq!(parallel.runs.len(), serial.runs.len());
        for (p, s) in parallel.runs.iter().zip(&serial.runs) {
            assert_eq!(p.ordering, s.ordering, "request order preserved");
            assert_eq!(p.order, s.order);
            assert_eq!(p.result, s.result, "{} differs across modes", p.ordering);
            assert_eq!(p.ave, s.ave);
        }
        assert_eq!(parallel.u_size, serial.u_size);
        assert_eq!(parallel.adi_summary, serial.adi_summary);
    }

    #[test]
    fn speculative_atpg_matches_serial_experiment() {
        let n = bench_format::parse(C17, "c17").unwrap();
        let circuit = CompiledCircuit::compile(n);
        let speculative = Experiment::on(&circuit)
            .parallel_orderings(false)
            .atpg_threads(4)
            .run();
        let sequential = Experiment::on(&circuit)
            .parallel_orderings(false)
            .atpg_threads(1)
            .run();
        assert_eq!(speculative.runs.len(), sequential.runs.len());
        for (p, s) in speculative.runs.iter().zip(&sequential.runs) {
            assert_eq!(p.result, s.result, "{} differs under speculation", p.ordering);
            assert_eq!(p.ave, s.ave);
        }
    }

    #[test]
    fn full_fault_universe_option() {
        let n = bench_format::parse(C17, "c17").unwrap();
        let circuit = CompiledCircuit::compile(n);
        let e = Experiment::on(&circuit)
            .collapse_faults(false)
            .orderings(vec![FaultOrdering::Original])
            .run();
        assert!(e.num_faults > circuit.collapsed_faults().len());
    }

    #[test]
    fn builder_setters_match_config() {
        let n = bench_format::parse(C17, "c17").unwrap();
        let circuit = CompiledCircuit::compile(n);
        let cfg = ExperimentConfig {
            orderings: vec![FaultOrdering::Original, FaultOrdering::Decr],
            ..ExperimentConfig::default()
        };
        let via_config = Experiment::on(&circuit).config(cfg.clone()).run();
        let via_setters = Experiment::on(&circuit)
            .uset(cfg.uset)
            .adi(cfg.adi)
            .testgen(cfg.testgen)
            .orderings(cfg.orderings.clone())
            .collapse_faults(cfg.collapse_faults)
            .parallel_orderings(cfg.parallel_orderings)
            .run();
        assert_eq!(via_config.num_faults, via_setters.num_faults);
        assert_eq!(via_config.u_size, via_setters.u_size);
        for (a, b) in via_config.runs.iter().zip(&via_setters.runs) {
            assert_eq!(a.ordering, b.ordering);
            assert_eq!(a.order, b.order);
            assert_eq!(a.result.tests, b.result.tests);
        }
    }

}
