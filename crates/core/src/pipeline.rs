//! End-to-end experiment pipeline: the paper's Section-4 methodology.
//!
//! For one circuit: select `U` → compute ADI → build each requested fault
//! order → run the (compaction-free) ATPG per order → collect test counts,
//! wall-clock run times, coverage curves, and `AVE` values. The table and
//! figure harnesses in `adi-bench` are thin formatters over the
//! [`Experiment`] struct this module produces.

use std::time::{Duration, Instant};

use adi_netlist::fault::{FaultId, FaultList};
use adi_netlist::Netlist;
use adi_sim::CoverageCurve;
use adi_atpg::{TestGenConfig, TestGenResult, TestGenerator};

use crate::metrics::average_detection_position;
use crate::uset::{select_u, USetConfig};
use crate::{order_faults, AdiAnalysis, AdiConfig, AdiSummary, FaultOrdering};

/// Configuration for [`run_experiment`].
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Selection of the random vector set `U`.
    pub uset: USetConfig,
    /// ADI computation options.
    pub adi: AdiConfig,
    /// ATPG options (backtrack limit, X-fill).
    pub testgen: TestGenConfig,
    /// The fault orders to run ATPG with.
    pub orderings: Vec<FaultOrdering>,
    /// Use the collapsed fault list (`true`, the usual choice) or the full
    /// fault universe.
    pub collapse_faults: bool,
}

impl Default for ExperimentConfig {
    /// The paper's main experiment: `Forig`, `Fdynm`, `F0dynm`, `Fincr0`.
    fn default() -> Self {
        ExperimentConfig {
            uset: USetConfig::default(),
            adi: AdiConfig::default(),
            testgen: TestGenConfig::default(),
            orderings: vec![
                FaultOrdering::Original,
                FaultOrdering::Dynamic,
                FaultOrdering::Dynamic0,
                FaultOrdering::Incr0,
            ],
            collapse_faults: true,
        }
    }
}

/// The outcome of ATPG under one fault order.
#[derive(Clone, Debug)]
pub struct OrderingRun {
    /// Which order this is.
    pub ordering: FaultOrdering,
    /// The ordered fault list used.
    pub order: Vec<FaultId>,
    /// The ATPG outcome (tests, per-test detections, fault statuses).
    pub result: TestGenResult,
    /// The fault-coverage curve of the run.
    pub curve: CoverageCurve,
    /// `AVE_ord` of the curve.
    pub ave: f64,
    /// Wall-clock test-generation time (ordering construction excluded,
    /// matching the paper's `t.gen` accounting).
    pub testgen_time: Duration,
    /// Wall-clock time spent building the fault order itself.
    pub ordering_time: Duration,
}

impl OrderingRun {
    /// Number of tests generated under this order (the paper's Table 5).
    pub fn num_tests(&self) -> usize {
        self.result.num_tests()
    }
}

/// Everything the paper reports about one circuit.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Circuit name.
    pub circuit: String,
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of target faults.
    pub num_faults: usize,
    /// Size of the selected vector set `U` (Table 4 column `vec`).
    pub u_size: usize,
    /// Fault coverage of `U` at selection time.
    pub u_coverage: f64,
    /// ADI summary (Table 4 columns `min`, `max`, `ratio`).
    pub adi_summary: AdiSummary,
    /// Wall-clock time of `U` selection plus ADI computation.
    pub adi_time: Duration,
    /// One entry per requested ordering, in request order.
    pub runs: Vec<OrderingRun>,
}

impl Experiment {
    /// The run for `ordering`, if it was requested.
    pub fn run_for(&self, ordering: FaultOrdering) -> Option<&OrderingRun> {
        self.runs.iter().find(|r| r.ordering == ordering)
    }

    /// Relative test-generation time `RT_ord / RT_orig` (Table 6).
    /// Returns `None` when either run is missing or the baseline took no
    /// measurable time.
    pub fn relative_runtime(&self, ordering: FaultOrdering) -> Option<f64> {
        let base = self.run_for(FaultOrdering::Original)?.testgen_time;
        let this = self.run_for(ordering)?.testgen_time;
        let base_s = base.as_secs_f64();
        if base_s == 0.0 {
            None
        } else {
            Some(this.as_secs_f64() / base_s)
        }
    }

    /// Normalized steepness `AVE_ord / AVE_orig` (Table 7).
    pub fn relative_ave(&self, ordering: FaultOrdering) -> Option<f64> {
        let base = self.run_for(FaultOrdering::Original)?.ave;
        let this = self.run_for(ordering)?.ave;
        if base == 0.0 {
            None
        } else {
            Some(this / base)
        }
    }
}

/// Runs the full paper pipeline on one circuit.
///
/// # Examples
///
/// ```
/// use adi_core::{pipeline::run_experiment, ExperimentConfig, FaultOrdering};
/// use adi_netlist::bench_format;
///
/// # fn main() -> Result<(), adi_netlist::NetlistError> {
/// let n = bench_format::parse(
///     "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n", "nand2")?;
/// let exp = run_experiment(&n, &ExperimentConfig::default());
/// assert_eq!(exp.runs.len(), 4);
/// let orig = exp.run_for(FaultOrdering::Original).unwrap();
/// assert!(orig.result.coverage() > 0.99);
/// # Ok(())
/// # }
/// ```
pub fn run_experiment(netlist: &Netlist, config: &ExperimentConfig) -> Experiment {
    let faults = if config.collapse_faults {
        FaultList::collapsed(netlist)
    } else {
        FaultList::full(netlist)
    };

    let adi_start = Instant::now();
    let selection = select_u(netlist, &faults, config.uset);
    let analysis = AdiAnalysis::compute(netlist, &faults, &selection.patterns, config.adi);
    let adi_time = adi_start.elapsed();

    let generator = TestGenerator::new(netlist, &faults, config.testgen);
    let mut runs = Vec::with_capacity(config.orderings.len());
    for &ordering in &config.orderings {
        let t0 = Instant::now();
        let order = order_faults(&analysis, ordering);
        let ordering_time = t0.elapsed();
        let t1 = Instant::now();
        let result = generator.run(&order);
        let testgen_time = t1.elapsed();
        let curve = result.coverage_curve();
        let ave = average_detection_position(&curve);
        runs.push(OrderingRun {
            ordering,
            order,
            result,
            curve,
            ave,
            testgen_time,
            ordering_time,
        });
    }

    Experiment {
        circuit: netlist.name().to_string(),
        num_inputs: netlist.num_inputs(),
        num_faults: faults.len(),
        u_size: selection.len(),
        u_coverage: selection.coverage,
        adi_summary: analysis.summary(),
        adi_time,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adi_netlist::bench_format;

    const C17: &str = "
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

    fn experiment() -> Experiment {
        let n = bench_format::parse(C17, "c17").unwrap();
        run_experiment(&n, &ExperimentConfig::default())
    }

    #[test]
    fn all_requested_orderings_run() {
        let e = experiment();
        assert_eq!(e.runs.len(), 4);
        for ord in [
            FaultOrdering::Original,
            FaultOrdering::Dynamic,
            FaultOrdering::Dynamic0,
            FaultOrdering::Incr0,
        ] {
            assert!(e.run_for(ord).is_some(), "{ord} missing");
        }
        assert!(e.run_for(FaultOrdering::Decr).is_none());
    }

    #[test]
    fn c17_full_coverage_under_every_order() {
        let e = experiment();
        for run in &e.runs {
            assert_eq!(
                run.result.num_detected(),
                e.num_faults,
                "{} left faults undetected",
                run.ordering
            );
            assert_eq!(run.curve.final_detected(), e.num_faults);
            assert!(run.ave >= 1.0, "AVE must be at least one test");
        }
    }

    #[test]
    fn exhaustive_u_for_tiny_circuit() {
        let e = experiment();
        assert_eq!(e.u_size, 32); // 5 inputs <= default threshold 6
        assert!((e.u_coverage - 1.0).abs() < 1e-12);
        // All faults detected by exhaustive U => min ADI >= 1.
        assert!(e.adi_summary.min >= 1);
        assert!(e.adi_summary.max >= e.adi_summary.min);
        assert_eq!(e.adi_summary.detected, e.num_faults);
    }

    #[test]
    fn relative_metrics_baseline_is_one() {
        let e = experiment();
        let r = e.relative_ave(FaultOrdering::Original).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_experiments() {
        let a = experiment();
        let b = experiment();
        for (ra, rb) in a.runs.iter().zip(&b.runs) {
            assert_eq!(ra.order, rb.order);
            assert_eq!(ra.result.tests, rb.result.tests);
            assert_eq!(ra.num_tests(), rb.num_tests());
        }
    }

    #[test]
    fn full_fault_universe_option() {
        let n = bench_format::parse(C17, "c17").unwrap();
        let cfg = ExperimentConfig {
            collapse_faults: false,
            orderings: vec![FaultOrdering::Original],
            ..ExperimentConfig::default()
        };
        let e = run_experiment(&n, &cfg);
        let collapsed = FaultList::collapsed(&n).len();
        assert!(e.num_faults > collapsed);
    }
}
