//! Steepness metrics for fault-coverage curves (Section 4 of the paper).

use adi_sim::CoverageCurve;

/// The paper's `AVE_ord`: the expected number of tests that must be
/// applied before a fault is detected,
///
/// ```text
/// AVE = ( Σ_{i=1..k} i · (n(i) − n(i−1)) ) / n(k)
/// ```
///
/// A lower value means a steeper fault-coverage curve. Returns 0 when the
/// test set detects nothing.
///
/// # Examples
///
/// ```
/// use adi_core::metrics::average_detection_position;
/// use adi_sim::CoverageCurve;
///
/// // 4 faults at test 1, 1 fault at test 2: AVE = (4·1 + 1·2) / 5 = 1.2
/// let curve = CoverageCurve::from_new_detections(&[4, 1], 10);
/// assert!((average_detection_position(&curve) - 1.2).abs() < 1e-12);
/// ```
pub fn average_detection_position(curve: &CoverageCurve) -> f64 {
    let detected = curve.final_detected();
    if detected == 0 {
        return 0.0;
    }
    let mut weighted = 0.0f64;
    for i in 1..=curve.num_tests() {
        weighted += (i as f64) * (curve.new_at(i) as f64);
    }
    weighted / detected as f64
}

/// `AVE_ord / AVE_orig`: the paper's Table-7 normalization. Returns
/// `f64::NAN` if the baseline detects nothing.
pub fn normalized_ave(ord: &CoverageCurve, orig: &CoverageCurve) -> f64 {
    let base = average_detection_position(orig);
    if base == 0.0 {
        f64::NAN
    } else {
        average_detection_position(ord) / base
    }
}

/// One labelled curve for plotting.
#[derive(Clone, PartialEq, Debug)]
pub struct LabelledCurve {
    /// Legend label (e.g. the ordering name).
    pub label: String,
    /// Plot glyph (the paper uses `o`, `d`, `z`).
    pub glyph: char,
    /// The curve.
    pub curve: CoverageCurve,
}

/// Renders Figure-1-style ASCII art: x = tests as a percentage of the
/// largest test set, y = fault coverage percentage.
///
/// Later curves overdraw earlier ones where they collide, mirroring the
/// paper's overlaid scatter plot.
pub fn ascii_plot(curves: &[LabelledCurve], width: usize, height: usize) -> String {
    assert!(width >= 10 && height >= 5, "plot too small");
    let max_tests = curves
        .iter()
        .map(|c| c.curve.num_tests())
        .max()
        .unwrap_or(0);
    let mut grid = vec![vec![' '; width]; height];

    for lc in curves {
        let total = lc.curve.total_faults().max(1);
        for i in 0..=lc.curve.num_tests() {
            if max_tests == 0 {
                continue;
            }
            let x = (i as f64 / max_tests as f64 * (width - 1) as f64).round() as usize;
            let cov = lc.curve.cumulative(i) as f64 / total as f64;
            let y = ((1.0 - cov) * (height - 1) as f64).round() as usize;
            grid[y.min(height - 1)][x.min(width - 1)] = lc.glyph;
        }
    }

    let mut out = String::new();
    out.push_str("f.c. 100% |\n");
    for row in &grid {
        out.push_str("          |");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("       0% +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "           0%{}100% of {} tests\n",
        " ".repeat(width.saturating_sub(9)),
        max_tests
    ));
    for lc in curves {
        out.push_str(&format!("  {} - {}\n", lc.glyph, lc.label));
    }
    out
}

/// Coverage retained when the last `drop_fraction` of the tests is
/// removed — the paper's tester-memory-truncation motivation.
///
/// Returns `(kept_tests, coverage_fraction)`.
pub fn truncated_coverage(curve: &CoverageCurve, drop_fraction: f64) -> (usize, f64) {
    let kept = ((1.0 - drop_fraction) * curve.num_tests() as f64).floor() as usize;
    (kept, curve.coverage_fraction(kept))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ave_hand_computed() {
        // n(1)=3, n(2)=3, n(3)=6: AVE = (1*3 + 2*0 + 3*3)/6 = 2.0
        let c = CoverageCurve::from_new_detections(&[3, 0, 3], 6);
        assert!((average_detection_position(&c) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ave_of_empty_detection_is_zero() {
        let c = CoverageCurve::from_new_detections(&[0, 0], 5);
        assert_eq!(average_detection_position(&c), 0.0);
    }

    #[test]
    fn steeper_curve_has_lower_ave() {
        let steep = CoverageCurve::from_new_detections(&[8, 1, 1], 10);
        let flat = CoverageCurve::from_new_detections(&[1, 1, 8], 10);
        assert!(
            average_detection_position(&steep) < average_detection_position(&flat)
        );
    }

    #[test]
    fn normalized_ave_baseline_is_one() {
        let c = CoverageCurve::from_new_detections(&[2, 2, 2], 6);
        assert!((normalized_ave(&c, &c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_ave_handles_empty_baseline() {
        let c = CoverageCurve::from_new_detections(&[1], 2);
        let empty = CoverageCurve::from_new_detections(&[0], 2);
        assert!(normalized_ave(&c, &empty).is_nan());
    }

    #[test]
    fn ascii_plot_contains_glyphs_and_legend() {
        let curves = vec![
            LabelledCurve {
                label: "orig".into(),
                glyph: 'o',
                curve: CoverageCurve::from_new_detections(&[1, 1, 1, 1], 4),
            },
            LabelledCurve {
                label: "dynm".into(),
                glyph: 'd',
                curve: CoverageCurve::from_new_detections(&[3, 1], 4),
            },
        ];
        let plot = ascii_plot(&curves, 40, 10);
        assert!(plot.contains('o'));
        assert!(plot.contains('d'));
        assert!(plot.contains("o - orig"));
        assert!(plot.contains("d - dynm"));
        assert!(plot.contains("100%"));
    }

    #[test]
    fn truncated_coverage_drops_tail() {
        let c = CoverageCurve::from_new_detections(&[5, 2, 2, 1], 10);
        let (kept, cov) = truncated_coverage(&c, 0.5);
        assert_eq!(kept, 2);
        assert!((cov - 0.7).abs() < 1e-12);
        let (all, full) = truncated_coverage(&c, 0.0);
        assert_eq!(all, 4);
        assert!((full - 1.0).abs() < 1e-12);
    }
}
