//! Selection of the input-vector set `U` (Section 4 of the paper).
//!
//! The paper's procedure: start from 10,000 random vectors, fault-simulate
//! them **with dropping** until either all vectors are consumed or about
//! 90% of the faults are detected after `N` vectors; keep only the first
//! `N` vectors. Optionally, vectors that detected no new fault during the
//! dropping simulation can be removed as a further speed-up.

use adi_netlist::fault::FaultList;
use adi_netlist::CompiledCircuit;
use adi_sim::{FaultSimulator, PatternSet};

/// Configuration for [`select_u_for`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct USetConfig {
    /// Size of the initial random vector pool (paper: 10,000).
    pub max_vectors: usize,
    /// Truncate `U` once this fraction of the faults is detected
    /// (paper: ~0.90).
    pub target_coverage: f64,
    /// Seed for the random pool.
    pub seed: u64,
    /// Circuits with at most this many inputs use the exhaustive vector
    /// set instead of random vectors (the paper uses all 16 vectors for
    /// the 4-input `lion` example). Set to 0 to disable.
    pub exhaustive_threshold: usize,
    /// Remove vectors that detected no new fault during the dropping
    /// simulation (the paper's optional speed-up).
    pub strip_useless: bool,
}

impl Default for USetConfig {
    fn default() -> Self {
        USetConfig {
            max_vectors: 10_000,
            target_coverage: 0.90,
            seed: 0xAD1_5EED,
            exhaustive_threshold: 6,
            strip_useless: false,
        }
    }
}

/// The outcome of [`select_u_for`].
#[derive(Clone, PartialEq, Debug)]
pub struct USelection {
    /// The selected vector set `U`.
    pub patterns: PatternSet,
    /// Fault coverage achieved by `U` during the dropping simulation.
    pub coverage: f64,
    /// `true` if the exhaustive set was used instead of random vectors.
    pub exhaustive: bool,
}

impl USelection {
    /// Number of vectors in `U` (the paper's `N`, Table 4 column `vec`).
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Returns `true` if `U` is empty (only possible for a fault-free,
    /// zero-vector corner case).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }
}

/// Selects the vector set `U` for a compiled circuit per the paper's
/// Section 4 procedure. This is the primary entry point: the dropping
/// fault simulation behind the selection runs on the compilation's
/// shared artifacts.
///
/// # Examples
///
/// ```
/// use adi_core::uset::{select_u_for, USetConfig};
/// use adi_netlist::{bench_format, CompiledCircuit};
///
/// # fn main() -> Result<(), adi_netlist::NetlistError> {
/// let n = bench_format::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and2")?;
/// let circuit = CompiledCircuit::compile(n);
/// let sel = select_u_for(&circuit, circuit.collapsed_faults(), USetConfig::default());
/// assert!(sel.exhaustive); // 2 inputs <= default threshold of 6
/// assert_eq!(sel.len(), 4);
/// # Ok(())
/// # }
/// ```
pub fn select_u_for(
    circuit: &CompiledCircuit,
    faults: &FaultList,
    config: USetConfig,
) -> USelection {
    let netlist = circuit.netlist();
    let sim = FaultSimulator::for_circuit(circuit, faults);

    if netlist.num_inputs() <= config.exhaustive_threshold {
        let patterns = PatternSet::exhaustive(netlist.num_inputs());
        let coverage = sim.with_dropping(&patterns).coverage();
        return USelection {
            patterns,
            coverage,
            exhaustive: true,
        };
    }

    let pool = PatternSet::random(netlist.num_inputs(), config.max_vectors, config.seed);
    let outcome = sim.with_dropping(&pool);
    let total = faults.len().max(1);
    let goal = (config.target_coverage * total as f64).ceil() as usize;

    // Cumulative detections per vector index.
    let mut new_per_vector = vec![0u32; pool.len()];
    for d in outcome.first_detection.iter().flatten() {
        new_per_vector[*d as usize] += 1;
    }
    let mut acc = 0usize;
    let mut n = pool.len();
    for (i, &d) in new_per_vector.iter().enumerate() {
        acc += d as usize;
        if acc >= goal {
            n = i + 1;
            break;
        }
    }

    let (patterns, covered) = if config.strip_useless {
        let keep: Vec<usize> = (0..n).filter(|&i| new_per_vector[i] > 0).collect();
        let covered: usize = keep.iter().map(|&i| new_per_vector[i] as usize).sum();
        (pool.subset(&keep), covered)
    } else {
        let covered: usize = new_per_vector[..n].iter().map(|&d| d as usize).sum();
        (pool.truncated(n), covered)
    };

    USelection {
        patterns,
        coverage: covered as f64 / total as f64,
        exhaustive: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adi_netlist::bench_format;
    use adi_netlist::{GateKind, Netlist, NetlistBuilder};

    /// A wide OR-of-ANDs circuit: random vectors detect most faults fast.
    fn medium_circuit() -> Netlist {
        let mut b = NetlistBuilder::new("med");
        let inputs: Vec<_> = (0..16).map(|i| b.add_input(format!("i{i}"))).collect();
        let mut layer = Vec::new();
        for w in inputs.chunks(2) {
            layer.push(b.add_gate_auto(GateKind::And, w).unwrap());
        }
        let mut layer2 = Vec::new();
        for w in layer.chunks(2) {
            layer2.push(b.add_gate_auto(GateKind::Xor, w).unwrap());
        }
        let y = b.add_gate_auto(GateKind::Or, &layer2).unwrap();
        b.mark_output(y);
        for &g in &layer {
            b.mark_output(g); // extra observability keeps faults testable
        }
        b.build().unwrap()
    }

    #[test]
    fn exhaustive_below_threshold() {
        let n = bench_format::parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "inv").unwrap();
        let faults = FaultList::collapsed(&n);
        let sel = select_u_for(&CompiledCircuit::compile(n.clone()), &faults, USetConfig::default());
        assert!(sel.exhaustive);
        assert_eq!(sel.len(), 2);
        assert!((sel.coverage - 1.0).abs() < 1e-12);
    }

    #[test]
    fn truncates_at_target_coverage() {
        let n = medium_circuit();
        let faults = FaultList::collapsed(&n);
        let cfg = USetConfig {
            max_vectors: 2000,
            target_coverage: 0.5,
            exhaustive_threshold: 0,
            ..USetConfig::default()
        };
        let sel = select_u_for(&CompiledCircuit::compile(n.clone()), &faults, cfg);
        assert!(!sel.exhaustive);
        assert!(sel.coverage >= 0.5, "coverage {}", sel.coverage);
        assert!(sel.len() <= 2000);
        // Demanding higher coverage never shrinks U.
        let sel90 = select_u_for(
            &CompiledCircuit::compile(n.clone()),
            &faults,
            USetConfig {
                target_coverage: 0.9,
                ..cfg
            },
        );
        assert!(sel90.len() >= sel.len());
    }

    #[test]
    fn strip_useless_removes_only_dead_vectors() {
        let n = medium_circuit();
        let faults = FaultList::collapsed(&n);
        let base = USetConfig {
            max_vectors: 500,
            target_coverage: 0.9,
            exhaustive_threshold: 0,
            ..USetConfig::default()
        };
        let plain = select_u_for(&CompiledCircuit::compile(n.clone()), &faults, base);
        let stripped = select_u_for(
            &CompiledCircuit::compile(n.clone()),
            &faults,
            USetConfig {
                strip_useless: true,
                ..base
            },
        );
        assert!(stripped.len() <= plain.len());
        // Dropping-coverage of the stripped set equals the plain one:
        // removed vectors detected nothing new.
        assert!((stripped.coverage - plain.coverage).abs() < 1e-12);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let n = medium_circuit();
        let faults = FaultList::collapsed(&n);
        let cfg = USetConfig {
            exhaustive_threshold: 0,
            max_vectors: 300,
            ..USetConfig::default()
        };
        let a = select_u_for(&CompiledCircuit::compile(n.clone()), &faults, cfg);
        let b = select_u_for(&CompiledCircuit::compile(n.clone()), &faults, cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn never_exceeds_pool_when_target_unreachable() {
        // Target 100% but pool tiny: keep the whole pool.
        let n = medium_circuit();
        let faults = FaultList::collapsed(&n);
        let sel = select_u_for(
            &CompiledCircuit::compile(n.clone()),
            &faults,
            USetConfig {
                max_vectors: 8,
                target_coverage: 1.0,
                exhaustive_threshold: 0,
                ..USetConfig::default()
            },
        );
        assert_eq!(sel.len(), 8);
    }
}
