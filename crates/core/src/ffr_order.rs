//! Independent-fault-set ordering (the paper's refs. \[2\]/\[5\]:
//! COMPACTEST-style ordering by maximal independent fault sets in
//! fanout-free regions).
//!
//! Two faults are *independent* if no single test detects both. Within a
//! fanout-free region (FFR), faults on distinct leaf lines requiring
//! conflicting side values tend to be independent, and the size of the
//! region's maximal independent set is well approximated by its leaf
//! count. COMPACTEST orders faults so that members of larger independent
//! sets come first, guaranteeing that early tests are all "necessary".
//!
//! This module provides that ordering as a historical baseline for the
//! ablation harness. The approximation used: a fault's score is the leaf
//! count of the FFR containing its site; faults are sorted by decreasing
//! score, ties by original order.

use adi_netlist::fault::{FaultId, FaultList, FaultSite};
use adi_netlist::{CompiledCircuit, FfrPartition, Netlist, NodeId};

/// Computes the COMPACTEST-style fault order, recomputing the FFR
/// decomposition from the bare netlist. Prefer
/// [`ffr_independent_order_for`] when a compilation is at hand.
///
/// # Examples
///
/// ```
/// use adi_core::ffr_order::ffr_independent_order;
/// use adi_netlist::{bench_format, fault::FaultList};
///
/// # fn main() -> Result<(), adi_netlist::NetlistError> {
/// let n = bench_format::parse(
///     "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt = AND(a, b)\ny = OR(t, c)\n", "c")?;
/// let faults = FaultList::collapsed(&n);
/// let order = ffr_independent_order(&n, &faults);
/// assert_eq!(order.len(), faults.len());
/// # Ok(())
/// # }
/// ```
pub fn ffr_independent_order(netlist: &Netlist, faults: &FaultList) -> Vec<FaultId> {
    with_partition(netlist, &FfrPartition::compute(netlist), faults)
}

/// [`ffr_independent_order`] over an already-compiled circuit, reusing
/// the compilation's cached FFR decomposition.
pub fn ffr_independent_order_for(
    circuit: &CompiledCircuit,
    faults: &FaultList,
) -> Vec<FaultId> {
    with_partition(circuit.netlist(), circuit.ffr(), faults)
}

fn with_partition(netlist: &Netlist, ffr: &FfrPartition, faults: &FaultList) -> Vec<FaultId> {
    // Leaf count per FFR root: members whose fanins all lie outside the
    // region (inputs of the region).
    let mut leaf_count = vec![0usize; netlist.num_nodes()];
    for node in netlist.node_ids() {
        let root = ffr.root_of(node);
        let is_leaf = netlist.fanins(node).is_empty()
            || netlist
                .fanins(node)
                .iter()
                .all(|&f| ffr.root_of(f) != root);
        if is_leaf {
            leaf_count[root.index()] += 1;
        }
    }

    let site_node = |id: FaultId| -> NodeId {
        match faults.fault(id).site() {
            FaultSite::Stem(n) => n,
            FaultSite::Branch { gate, .. } => gate,
        }
    };

    let mut order: Vec<FaultId> = faults.ids().collect();
    order.sort_by_key(|&id| {
        let root = ffr.root_of(site_node(id));
        (std::cmp::Reverse(leaf_count[root.index()]), id)
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use adi_netlist::bench_format;

    #[test]
    fn order_is_a_permutation() {
        let n = bench_format::parse(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\nt = AND(a, b)\ny = OR(t, c)\nz = NOT(t)\n",
            "c",
        )
        .unwrap();
        let faults = FaultList::collapsed(&n);
        let order = ffr_independent_order(&n, &faults);
        let mut sorted: Vec<usize> = order.iter().map(|f| f.index()).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..faults.len()).collect::<Vec<_>>());
    }

    #[test]
    fn larger_regions_come_first() {
        // Circuit with a wide FFR (4-leaf AND tree) and a tiny one (single
        // BUF): faults in the wide region must precede the BUF's faults.
        let src = "
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
OUTPUT(y)
OUTPUT(z)
t1 = AND(a, b)
t2 = AND(c, d)
y = AND(t1, t2)
z = BUF(e)
";
        let n = bench_format::parse(src, "c").unwrap();
        let faults = FaultList::collapsed(&n);
        let order = ffr_independent_order(&n, &faults);
        let z = n.find_node("z").unwrap();
        let e = n.find_node("e").unwrap();
        let first_small = order
            .iter()
            .position(|&id| {
                let node = match faults.fault(id).site() {
                    FaultSite::Stem(node) => node,
                    FaultSite::Branch { gate, .. } => gate,
                };
                node == z || node == e
            })
            .unwrap();
        // Everything before the first small-FFR fault is from the big FFR.
        assert!(first_small > 0);
        let big_faults = order[..first_small].len();
        // The AND-tree FFR contains all faults on a..d, t1, t2, y.
        assert!(big_faults >= faults.len() - 4);
    }

    #[test]
    fn deterministic() {
        let n = bench_format::parse(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n",
            "c",
        )
        .unwrap();
        let faults = FaultList::collapsed(&n);
        assert_eq!(
            ffr_independent_order(&n, &faults),
            ffr_independent_order(&n, &faults)
        );
    }
}
