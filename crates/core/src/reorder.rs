//! Post-generation test reordering (the method of the paper's ref. \[7\],
//! Lin et al., ITC 2001).
//!
//! Given a finished test set, reorder it so that tests detecting larger
//! numbers of faults appear earlier, yielding a steeper fault-coverage
//! curve without touching the test set itself. The paper argues that
//! ADI-ordered *generation* achieves a steep curve directly; this module
//! provides the comparison baseline.
//!
//! The implementation is the greedy set-cover heuristic: repeatedly pick
//! the test that detects the most not-yet-covered faults (ties broken by
//! original position), using the full no-drop detection matrix.

use adi_netlist::fault::{FaultId, FaultList};
use adi_netlist::CompiledCircuit;
use adi_sim::{CoverageCurve, FaultSimulator, PatternSet};

/// The result of reordering a test set.
#[derive(Clone, PartialEq, Debug)]
pub struct ReorderResult {
    /// Permutation: `permutation[i]` is the original index of the test
    /// placed at position `i`.
    pub permutation: Vec<usize>,
    /// Coverage curve of the reordered test set.
    pub curve: CoverageCurve,
}

/// Greedily reorders `tests` for the steepest coverage curve over an
/// already-compiled circuit.
///
/// # Examples
///
/// ```
/// use adi_core::reorder::reorder_tests_for;
/// use adi_netlist::{bench_format, CompiledCircuit};
/// use adi_sim::{Pattern, PatternSet};
///
/// # fn main() -> Result<(), adi_netlist::NetlistError> {
/// let n = bench_format::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and2")?;
/// let circuit = CompiledCircuit::compile(n);
/// // The all-ones vector detects only one fault class; (0,1)/(1,0) detect
/// // two each. Reordering moves one of them first.
/// let tests = PatternSet::from_patterns(2, &[
///     Pattern::from_value(2, 3),
///     Pattern::from_value(2, 1),
///     Pattern::from_value(2, 2),
///     Pattern::from_value(2, 0),
/// ]);
/// let r = reorder_tests_for(&circuit, circuit.collapsed_faults(), &tests);
/// assert_ne!(r.permutation[0], 0);
/// # Ok(())
/// # }
/// ```
pub fn reorder_tests_for(
    circuit: &CompiledCircuit,
    faults: &FaultList,
    tests: &PatternSet,
) -> ReorderResult {
    let sim = FaultSimulator::for_circuit(circuit, faults);
    let matrix = sim.no_drop_matrix(tests);
    let n_tests = tests.len();
    let n_faults = faults.len();

    // Per-test detected fault sets, as bitmaps over faults.
    let blocks = n_faults.div_ceil(64);
    let mut test_rows: Vec<Vec<u64>> = vec![vec![0u64; blocks]; n_tests];
    for f in 0..n_faults {
        for u in matrix.detecting_patterns(FaultId::new(f)) {
            test_rows[u][f / 64] |= 1u64 << (f % 64);
        }
    }

    let mut covered = vec![0u64; blocks];
    let mut remaining: Vec<usize> = (0..n_tests).collect();
    let mut permutation = Vec::with_capacity(n_tests);
    let mut new_detections = Vec::with_capacity(n_tests);

    while !remaining.is_empty() {
        let (best_pos, best_gain) = remaining
            .iter()
            .enumerate()
            .map(|(pos, &t)| {
                let gain: u32 = test_rows[t]
                    .iter()
                    .zip(&covered)
                    .map(|(&r, &c)| (r & !c).count_ones())
                    .sum();
                (pos, gain)
            })
            // max_by_key returns the last max; ties must favour the
            // earliest original position, so compare (gain, Reverse(pos)).
            .max_by_key(|&(pos, gain)| (gain, std::cmp::Reverse(pos)))
            .expect("remaining nonempty");
        let t = remaining.remove(best_pos);
        for (c, &r) in covered.iter_mut().zip(&test_rows[t]) {
            *c |= r;
        }
        permutation.push(t);
        new_detections.push(best_gain);
    }

    ReorderResult {
        permutation,
        curve: CoverageCurve::from_new_detections(&new_detections, n_faults),
    }
}

/// Classic **reverse-order static compaction** over an already-compiled
/// circuit: simulate the test set in reverse application order with
/// fault dropping and keep only tests that detect at least one new
/// fault. Because late tests in an ATPG-generated set target hard
/// faults, reverse simulation lets them absorb the easy detections and
/// frequently exposes early tests as unnecessary.
///
/// Returns the indices of the retained tests in original order. Total
/// coverage is preserved exactly.
///
/// # Examples
///
/// ```
/// use adi_core::reorder::reverse_order_compaction_for;
/// use adi_netlist::{bench_format, CompiledCircuit};
/// use adi_sim::{Pattern, PatternSet};
///
/// # fn main() -> Result<(), adi_netlist::NetlistError> {
/// let n = bench_format::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and2")?;
/// let circuit = CompiledCircuit::compile(n);
/// // A duplicated test is always removable.
/// let tests = PatternSet::from_patterns(2, &[
///     Pattern::from_value(2, 1),
///     Pattern::from_value(2, 1),
///     Pattern::from_value(2, 3),
/// ]);
/// let kept = reverse_order_compaction_for(&circuit, circuit.collapsed_faults(), &tests);
/// assert!(kept.len() < 3);
/// # Ok(())
/// # }
/// ```
pub fn reverse_order_compaction_for(
    circuit: &CompiledCircuit,
    faults: &FaultList,
    tests: &PatternSet,
) -> Vec<usize> {
    use adi_sim::faultsim::SimScratch;

    let sim = FaultSimulator::for_circuit(circuit, faults);
    let mut scratch = SimScratch::for_circuit(circuit);
    let mut active: Vec<FaultId> = faults.ids().collect();
    let mut kept = Vec::new();
    for t in (0..tests.len()).rev() {
        if active.is_empty() {
            break;
        }
        let detected = sim.detect_pattern(&tests.get(t), &active, &mut scratch);
        if !detected.is_empty() {
            kept.push(t);
            active.retain(|id| !detected.contains(id));
        }
    }
    kept.reverse();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use adi_netlist::bench_format;
    use adi_sim::Pattern;
    use crate::metrics::average_detection_position;

    const C17: &str = "
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

    #[test]
    fn permutation_is_valid() {
        let n = bench_format::parse(C17, "c17").unwrap();
        let faults = FaultList::collapsed(&n);
        let tests = PatternSet::random(5, 20, 3);
        let r = reorder_tests_for(&CompiledCircuit::compile(n.clone()), &faults, &tests);
        let mut sorted = r.permutation.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn reordering_never_worsens_ave() {
        let n = bench_format::parse(C17, "c17").unwrap();
        let faults = FaultList::collapsed(&n);
        let tests = PatternSet::random(5, 30, 17);
        let sim = FaultSimulator::for_circuit(&CompiledCircuit::compile(n.clone()), &faults);
        let original = CoverageCurve::from_first_detection(
            &sim.with_dropping(&tests).first_detection,
            tests.len(),
            faults.len(),
        );
        let reordered = reorder_tests_for(&CompiledCircuit::compile(n.clone()), &faults, &tests);
        assert!(
            average_detection_position(&reordered.curve)
                <= average_detection_position(&original) + 1e-12
        );
        // Reordering never changes final coverage.
        assert_eq!(
            reordered.curve.final_detected(),
            original.final_detected()
        );
    }

    #[test]
    fn greedy_picks_biggest_test_first() {
        let n = bench_format::parse(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n",
            "and2",
        )
        .unwrap();
        let faults = FaultList::collapsed(&n);
        // Vector 1=(0,1) detects {a/1, y/1}: two faults. Vector 3=(1,1)
        // detects {a0-class}: one fault.
        let tests = PatternSet::from_patterns(
            2,
            &[Pattern::from_value(2, 3), Pattern::from_value(2, 1)],
        );
        let r = reorder_tests_for(&CompiledCircuit::compile(n.clone()), &faults, &tests);
        assert_eq!(r.permutation, vec![1, 0]);
        assert_eq!(r.curve.cumulative(1), 2);
    }

    #[test]
    fn reverse_compaction_preserves_coverage() {
        let n = bench_format::parse(C17, "c17").unwrap();
        let faults = FaultList::collapsed(&n);
        let tests = PatternSet::random(5, 40, 21);
        let sim = FaultSimulator::for_circuit(&CompiledCircuit::compile(n.clone()), &faults);
        let before = sim.with_dropping(&tests).num_detected();
        let kept = reverse_order_compaction_for(&CompiledCircuit::compile(n.clone()), &faults, &tests);
        let compacted = tests.subset(&kept);
        let after = sim.with_dropping(&compacted).num_detected();
        assert_eq!(before, after);
        assert!(kept.len() <= tests.len());
        // Kept indices are strictly increasing (original order).
        assert!(kept.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn reverse_compaction_removes_redundant_tests() {
        let n = bench_format::parse(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n",
            "and2",
        )
        .unwrap();
        let faults = FaultList::collapsed(&n);
        // 0b01 and 0b10 and 0b11 cover everything; extra duplicates of
        // 0b11 and a useless 0b00... 0b00 detects y/1 though. Use strict
        // duplicates instead.
        let tests = PatternSet::from_patterns(
            2,
            &[
                Pattern::from_value(2, 3),
                Pattern::from_value(2, 3),
                Pattern::from_value(2, 1),
                Pattern::from_value(2, 2),
            ],
        );
        let kept = reverse_order_compaction_for(&CompiledCircuit::compile(n.clone()), &faults, &tests);
        assert_eq!(kept.len(), 3);
        assert!(!kept.contains(&0), "the duplicate first test must go");
    }

    #[test]
    fn ties_prefer_original_position() {
        let n = bench_format::parse(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n",
            "and2",
        )
        .unwrap();
        let faults = FaultList::collapsed(&n);
        // Two copies of the same test: gains tie; position 0 must win.
        let tests = PatternSet::from_patterns(
            2,
            &[Pattern::from_value(2, 1), Pattern::from_value(2, 1)],
        );
        let r = reorder_tests_for(&CompiledCircuit::compile(n.clone()), &faults, &tests);
        assert_eq!(r.permutation, vec![0, 1]);
    }
}
