//! The accidental detection index (ADI) fault-ordering heuristic.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Pomeranz & Reddy, *"The Accidental Detection Index as a Fault Ordering
//! Heuristic for Full-Scan Circuits"*, DATE 2005):
//!
//! * [`uset`] — selection of the random vector set `U` from which the index
//!   is estimated (Section 4 of the paper).
//! * [`AdiAnalysis`] — `ndet(u)`, `D(f)` and `ADI(f)` from fault simulation
//!   without dropping (Section 2), with the conservative *min* estimator,
//!   the *mean* alternative, and the n-detection approximation the paper
//!   mentions.
//! * [`FaultOrdering`] — the six fault orders of Section 3 (`Forig`,
//!   `Fincr0`, `Fdecr`, `F0decr`, `Fdynm`, `F0dynm`), with the dynamic
//!   orders built by a monotone bucket queue ([`dynamic`]).
//! * [`metrics`] — the fault-coverage curve `n_ord(i)` and the steepness
//!   metric `AVE_ord` of Section 4.
//! * [`pipeline`] — the end-to-end experiment of the paper: pick `U`,
//!   compute ADI, order faults, run ATPG per order, collect test counts,
//!   run times, and coverage curves.
//! * [`reorder`], [`ffr_order`] — comparison baselines from the paper's
//!   references \[7\] (post-generation test reordering) and \[2\]
//!   (independent-fault-set ordering).
//!
//! # Examples
//!
//! Compute accidental detection indices for a small circuit over its
//! exhaustive vector set:
//!
//! ```
//! use adi_core::{AdiAnalysis, AdiConfig};
//! use adi_netlist::{bench_format, CompiledCircuit};
//! use adi_sim::PatternSet;
//!
//! # fn main() -> Result<(), adi_netlist::NetlistError> {
//! let n = bench_format::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and2")?;
//! let circuit = CompiledCircuit::compile(n);
//! let faults = circuit.collapsed_faults();
//! let u = PatternSet::exhaustive(2);
//! let adi = AdiAnalysis::for_circuit(&circuit, faults, &u, AdiConfig::default());
//! // Every collapsed fault of an irredundant circuit is detected by the
//! // exhaustive set, so every ADI is at least 1.
//! assert!(faults.ids().all(|f| adi.adi(f) >= 1));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adi;
pub mod dynamic;
pub mod ffr_order;
pub mod metrics;
mod order;
pub mod pipeline;
pub mod reorder;
pub mod uset;

pub use adi::{AdiAnalysis, AdiConfig, AdiEstimator, AdiSummary};
pub use order::{order_faults, FaultOrdering};
pub use pipeline::{Experiment, ExperimentBuilder, ExperimentConfig, OrderingRun};
pub use uset::{USelection, USetConfig};
